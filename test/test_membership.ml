(* Epoch-based reconfiguration: view changes, the membership fence,
   re-replication, and the churn generators. *)

open Core

let expect_consistent cluster =
  match Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "oracle: %s" msg

let increment cluster ~node oid =
  match
    Cluster.run_program cluster ~node (fun () -> Benchmarks.Counter.increment oid)
  with
  | Executor.Committed _ -> ()
  | Executor.Failed msg -> Alcotest.failf "increment on node %d failed: %s" node msg

let expect_counter cluster ~node ~oid expected =
  match Cluster.run_program cluster ~node (fun () -> Txn.read oid) with
  | Executor.Committed (Store.Value.Int v) ->
    Alcotest.(check int) (Printf.sprintf "counter read on node %d" node) expected v
  | Executor.Committed v ->
    Alcotest.failf "unexpected value %s" (Store.Value.to_string v)
  | Executor.Failed msg -> Alcotest.failf "read on node %d failed: %s" node msg

(* {2 The membership fence, at the RPC layer}

   The acceptance-level property: a message stamped with a superseded
   epoch is provably rejected — the handler never runs, the caller times
   out, and the drop is counted. *)

let make_rpc ?(nodes = 4) () =
  let engine = Sim.Engine.create () in
  let topology = Sim.Topology.uniform ~latency:10. ~nodes () in
  let network = Sim.Network.create ~engine ~topology ~service_time:0.5 ~jitter:0. () in
  let rpc = Sim.Rpc.create ~network () in
  (engine, rpc)

let test_stale_epoch_request_fenced () =
  let engine, rpc = make_rpc () in
  (* The epoch is keyed on the request payload (the shard its objects live
     on); here a view change lands while the request is in flight, so the
     envelope's send-time stamp is superseded on arrival. *)
  let epoch = ref 0 in
  Sim.Rpc.set_fencing rpc ~epoch_of:(fun _ -> !epoch) ~fenceable:(fun _ -> true);
  let handled = ref 0 in
  Sim.Rpc.serve rpc ~node:1 (fun ~src:_ req ->
      incr handled;
      Some (req + 1));
  let timed_out = ref false in
  Sim.Rpc.call rpc ~src:0 ~dst:1 ~timeout:200. 7
    ~on_reply:(fun _ -> Alcotest.fail "a stale-epoch request must not be served")
    ~on_timeout:(fun () -> timed_out := true);
  (* The view changes before the envelope is delivered. *)
  epoch := 1;
  Sim.Engine.run engine;
  Alcotest.(check int) "handler never invoked" 0 !handled;
  Alcotest.(check bool) "caller timed out" true !timed_out;
  Alcotest.(check int) "drop counted" 1 (Sim.Rpc.fenced rpc);
  (* A fresh call is stamped with the current epoch and goes through. *)
  let answer = ref None in
  Sim.Rpc.call rpc ~src:0 ~dst:1 ~timeout:200. 7
    ~on_reply:(fun rep -> answer := Some rep)
    ~on_timeout:(fun () -> Alcotest.fail "current-epoch call timed out");
  Sim.Engine.run engine;
  Alcotest.(check (option int)) "served after catching up" (Some 8) !answer;
  Alcotest.(check int) "no further drops" 1 (Sim.Rpc.fenced rpc)

let test_stale_epoch_reply_fenced () =
  let engine, rpc = make_rpc () in
  (* The view changes after the request was served but before its reply
     lands: the reply carries the old epoch and must be dropped at the
     caller, whose retry would re-stamp. *)
  let epoch = ref 0 in
  Sim.Rpc.set_fencing rpc ~epoch_of:(fun _ -> !epoch) ~fenceable:(fun _ -> false);
  let handled = ref 0 in
  Sim.Rpc.serve rpc ~node:1 (fun ~src:_ req ->
      incr handled;
      Some req);
  let timed_out = ref false in
  Sim.Rpc.call rpc ~src:0 ~dst:1 ~timeout:200. 7
    ~on_reply:(fun _ -> Alcotest.fail "a stale-epoch reply must be dropped")
    ~on_timeout:(fun () -> timed_out := true);
  (* One-way latency is 10 ms: bump the epoch while the reply is on the
     wire (after the request was served at ~10.5 ms, before the reply
     lands at ~21 ms). *)
  Sim.Engine.schedule engine ~delay:15. (fun () -> epoch := 1);
  Sim.Engine.run engine;
  Alcotest.(check int) "request itself was served" 1 !handled;
  Alcotest.(check bool) "caller timed out" true !timed_out;
  Alcotest.(check int) "stale reply counted" 1 (Sim.Rpc.fenced rpc)

(* {2 Join / leave / replace, end to end} *)

let test_join_syncs_state_and_extends_view () =
  let cluster = Cluster.create ~nodes:5 ~spares:1 ~seed:71 (Config.default Config.Closed) in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  for i = 0 to 9 do
    increment cluster ~node:(i mod 5) oid
  done;
  Alcotest.(check (list int)) "initial view" [ 0; 1; 2; 3; 4 ] (Cluster.members cluster);
  Alcotest.(check int) "initial epoch" 0 (Cluster.epoch cluster);
  Alcotest.(check int) "capacity includes the spare" 6 (Cluster.nodes cluster);
  let joined = ref false in
  Cluster.join_node_at cluster
    ~on_done:(fun () -> joined := true)
    ~at:(Cluster.now cluster +. 10.)
    ~node:5;
  Cluster.drain cluster;
  Alcotest.(check bool) "join completed" true !joined;
  Alcotest.(check (list int)) "view extended" [ 0; 1; 2; 3; 4; 5 ] (Cluster.members cluster);
  Alcotest.(check int) "epoch bumped" 1 (Cluster.epoch cluster);
  (* The joiner received the committed frontier through the snapshot. *)
  let copy = Store.Replica.get (Cluster.store_of cluster ~node:5) oid in
  Alcotest.(check int) "joiner synced version" 10 copy.Store.Replica.version;
  Alcotest.(check bool) "joiner synced value" true
    (copy.Store.Replica.value = Store.Value.Int 10);
  (* And serves transactions in the new view. *)
  increment cluster ~node:5 oid;
  Cluster.drain cluster;
  expect_counter cluster ~node:5 ~oid 11;
  expect_consistent cluster

let test_leave_hands_off_and_shrinks_view () =
  let cluster = Cluster.create ~nodes:5 ~seed:72 (Config.default Config.Closed) in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  for i = 0 to 4 do
    increment cluster ~node:i oid
  done;
  let left = ref false in
  Cluster.leave_node_at cluster
    ~on_done:(fun () -> left := true)
    ~at:(Cluster.now cluster +. 10.)
    ~node:4;
  Cluster.drain cluster;
  Alcotest.(check bool) "leave completed" true !left;
  Alcotest.(check (list int)) "view shrank" [ 0; 1; 2; 3 ] (Cluster.members cluster);
  Alcotest.(check int) "epoch bumped" 1 (Cluster.epoch cluster);
  Alcotest.(check bool) "leaver is no longer a member" false (Cluster.is_member cluster 4);
  (* No committed state was lost, and no quorum routes through the leaver. *)
  expect_counter cluster ~node:0 ~oid 5;
  List.iter
    (fun node ->
      let q = Cluster.read_quorum_of cluster ~node @ Cluster.write_quorum_of cluster ~node in
      Alcotest.(check bool)
        (Printf.sprintf "node %d's quorums avoid the departed node" node)
        false (List.mem 4 q))
    (Cluster.members cluster);
  increment cluster ~node:2 oid;
  Cluster.drain cluster;
  expect_counter cluster ~node:3 ~oid 6;
  expect_consistent cluster

let test_rolling_replaces_recycle_departed_nodes () =
  let cluster = Cluster.create ~nodes:5 ~spares:1 ~seed:73 (Config.default Config.Closed) in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  for i = 0 to 4 do
    increment cluster ~node:i oid
  done;
  (* Replace every original node once; from the second step on, each
     joiner is a machine an earlier replace decommissioned, so this also
     exercises FIFO queueing of overlapping reconfigurations. *)
  let completed = ref 0 in
  let t0 = Cluster.now cluster in
  List.iteri
    (fun i (leaving, joining) ->
      Cluster.replace_node_at cluster
        ~on_done:(fun () -> incr completed)
        ~at:(t0 +. 10. +. (10. *. Float.of_int i))
        ~leaving ~joining)
    [ (0, 5); (1, 0); (2, 1); (3, 2); (4, 3) ];
  Cluster.drain cluster;
  Alcotest.(check int) "all five replaces completed" 5 !completed;
  Alcotest.(check int) "one epoch per replace" 5 (Cluster.epoch cluster);
  Alcotest.(check (list int)) "final view" [ 0; 1; 2; 3; 5 ] (Cluster.members cluster);
  (* The counter survived five successive state handoffs. *)
  expect_counter cluster ~node:5 ~oid 5;
  increment cluster ~node:0 oid;
  Cluster.drain cluster;
  expect_counter cluster ~node:1 ~oid 6;
  expect_consistent cluster

let test_departed_node_cannot_be_removed_again () =
  let cluster = Cluster.create ~nodes:5 ~seed:74 (Config.default Config.Closed) in
  let left = ref false in
  Cluster.leave_node_at cluster ~on_done:(fun () -> left := true) ~at:10. ~node:4;
  Cluster.drain cluster;
  Alcotest.(check bool) "leave completed" true !left;
  Alcotest.check_raises "removing a non-member raises"
    (Invalid_argument "Cluster: cannot remove node 4: not a member")
    (fun () ->
      Cluster.leave_node_at cluster ~at:(Cluster.now cluster) ~node:4;
      Cluster.drain cluster);
  (* Shrinking below the quorum-viable minimum is rejected too. *)
  let try_leave node =
    Cluster.leave_node_at cluster ~at:(Cluster.now cluster) ~node;
    Cluster.drain cluster
  in
  try_leave 3;
  (try try_leave 2 with Invalid_argument _ -> ());
  Alcotest.(check (list int)) "view never shrinks below 3" [ 0; 1; 2 ]
    (Cluster.members cluster)

(* {2 State transfer racing lease termination}

   A decided commit is stranded under a lease at replica 7 (its coordinator
   died mid-apply) while a join's Sync_req/Sync_rep state transfer runs.
   Whichever of the rescue and the handoff reaches the replica first, the
   decided commit must survive, the lease must fall, and the joiner must
   end up with the committed copy. *)

let test_sync_races_lease_rescue () =
  let config = Config.default Config.Closed in
  let cluster = Cluster.create ~nodes:9 ~spares:1 ~seed:62 config in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  let txn = Ids.fresh_txn (Cluster.ids cluster) in
  (* Stage the decided-but-unreleased commit by hand (same staging as the
     lease-rescue test): replica 7 votes and holds the lock; the Apply
     reached the rest of the write quorum before the coordinator died. *)
  let holder = Cluster.server_of cluster ~node:7 in
  (match
     Server.handle holder ~src:3
       (Messages.Commit_req
          {
            txn;
            dataset = Messages.dataset_of_list [ { Messages.oid; version = 0; owner = 0 } ];
            locks = [ oid ];
            round = 1;
            peers = [];
          })
   with
  | Some (Messages.Vote { commit = true; _ }) -> ()
  | _ -> Alcotest.fail "replica 7 refused the vote");
  Alcotest.(check bool) "lease held at replica 7" true (Cluster.held_leases cluster <> []);
  List.iter
    (fun node ->
      ignore
        (Server.handle (Cluster.server_of cluster ~node) ~src:3
           (Messages.Apply
              {
                txn;
                writes = Messages.writes_of_list [ (oid, 1, Store.Value.Int 7) ];
                reads = [||];
              })))
    [ 0; 2; 3; 8 ];
  (match Cluster.oracle cluster with
  | Some oracle ->
    Oracle.note_commit oracle ~txn ~decision:(Cluster.now cluster)
      ~window_start:(Cluster.now cluster) ~reads:[ (oid, 0) ] ~writes:[ (oid, 1) ]
  | None -> ());
  (* Now race a join against the lease's termination pipeline. *)
  let joined = ref false in
  Cluster.join_node_at cluster ~on_done:(fun () -> joined := true) ~at:1. ~node:9;
  Cluster.drain cluster;
  Alcotest.(check bool) "join completed" true !joined;
  Alcotest.(check int) "epoch bumped" 1 (Cluster.epoch cluster);
  Alcotest.(check int) "decided commit never presumed aborted" 0
    (Metrics.presumed_aborts (Cluster.metrics cluster));
  Alcotest.(check bool) "all leases released" true (Cluster.held_leases cluster = []);
  let check_copy node =
    let copy = Store.Replica.get (Cluster.store_of cluster ~node) oid in
    Alcotest.(check int) (Printf.sprintf "node %d adopted the version" node) 1
      copy.Store.Replica.version;
    Alcotest.(check bool) (Printf.sprintf "node %d adopted the value" node) true
      (copy.Store.Replica.value = Store.Value.Int 7)
  in
  check_copy 7;
  check_copy 9;
  (match Cluster.run_program cluster ~node:9 (fun () -> Txn.read oid) with
  | Executor.Committed (Store.Value.Int 7) -> ()
  | Executor.Committed v -> Alcotest.failf "unexpected value %s" (Store.Value.to_string v)
  | Executor.Failed msg -> Alcotest.failf "post-join read failed: %s" msg);
  expect_consistent cluster

(* {2 The 1-copy oracle evaluates over the evolving member set} *)

let test_latest_value_ignores_departed_replicas () =
  let cluster = Cluster.create ~nodes:5 ~seed:75 (Config.default Config.Closed) in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  for i = 0 to 3 do
    increment cluster ~node:i oid
  done;
  Cluster.leave_node_at cluster ~at:(Cluster.now cluster +. 5.) ~node:4;
  Cluster.drain cluster;
  (* Plant a bogus higher version on the departed machine: a verdict that
     scanned all capacity instead of the current members would pick it up. *)
  Store.Replica.sync_copy
    (Cluster.store_of cluster ~node:4)
    ~oid ~version:99 ~value:(Store.Value.Int 999_999);
  Alcotest.(check bool) "verdict reads only current members" true
    (Benchmarks.Workload.latest_value cluster ~oid = Store.Value.Int 4)

(* {2 Scenario validation of membership operations} *)

let contains ~substring msg =
  let n = String.length substring and m = String.length msg in
  let rec scan i = i + n <= m && (String.sub msg i n = substring || scan (i + 1)) in
  n = 0 || scan 0

let expect_error ~substring result =
  match result with
  | Ok () -> Alcotest.failf "expected an error mentioning %S" substring
  | Error msg ->
    if not (contains ~substring msg) then
      Alcotest.failf "error %S does not mention %S" msg substring

let test_scenario_validate_membership () =
  let members = [ 0; 1; 2; 3; 4 ] in
  let validate events = Harness.Scenario.validate ~members ~nodes:7 events in
  expect_error ~substring:"already a member"
    (validate [ Harness.Scenario.Join { node = 2; at = 0. } ]);
  expect_error ~substring:"not a member"
    (validate [ Harness.Scenario.Leave { node = 5; at = 0. } ]);
  expect_error ~substring:"crashed"
    (validate
       [
         Harness.Scenario.Crash { node = 3; at = 0. };
         Harness.Scenario.Leave { node = 3; at = 10. };
       ]);
  expect_error ~substring:"below the quorum-viable minimum"
    (validate
       [
         Harness.Scenario.Leave { node = 4; at = 0. };
         Harness.Scenario.Leave { node = 3; at = 1. };
         Harness.Scenario.Leave { node = 2; at = 2. };
       ]);
  expect_error ~substring:"outside"
    (validate [ Harness.Scenario.Join { node = 9; at = 0. } ]);
  (* A departed node is a legal joiner, and order is what matters. *)
  Alcotest.(check bool) "replace then rejoin is valid" true
    (validate
       [
         Harness.Scenario.Replace { leaving = 0; joining = 5; at = 0. };
         Harness.Scenario.Join { node = 0; at = 10. };
       ]
    = Ok ());
  expect_error ~substring:"already a member"
    (validate
       [
         Harness.Scenario.Join { node = 0; at = 0. };
         Harness.Scenario.Replace { leaving = 1; joining = 5; at = 10. };
       ])

(* {2 The offline epoch-fencing rule} *)

let synthetic_trace events =
  let tracer = Obs.Tracer.create ~capacity:64 () in
  List.iter
    (fun (time, kind, txn, a, b) ->
      Obs.Tracer.emit tracer ~time ~kind ?txn ~a ~b ())
    events;
  Obs.Tracer.events tracer

let test_checker_epoch_fencing_rule () =
  let t txn = Some txn in
  (* A commit whose round was sent in epoch 0 but collected a vote after
     the view changed must be flagged. *)
  let mixed =
    synthetic_trace
      [
        (1., Obs.Sem.commit_send, t 5, 2, 3);
        (2., Obs.Sem.vote_recv, t 5, 1, 1);
        (3., Obs.Sem.view_change, None, 1, 4);
        (4., Obs.Sem.vote_recv, t 5, 2, 1);
        (5., Obs.Sem.txn_commit, t 5, -1, 0);
      ]
  in
  (match Obs.Checker.check mixed with
  | [ v ] ->
    Alcotest.(check string) "rule name" "epoch-fencing" v.Obs.Checker.rule;
    Alcotest.(check int) "transaction" 5 v.Obs.Checker.txn
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs));
  (* A commit decided after the view changed, over an old-epoch round, is
     flagged even when every vote matched the send epoch. *)
  let late =
    synthetic_trace
      [
        (1., Obs.Sem.commit_send, t 6, 2, 3);
        (2., Obs.Sem.vote_recv, t 6, 1, 1);
        (3., Obs.Sem.vote_recv, t 6, 2, 1);
        (4., Obs.Sem.view_change, None, 1, 4);
        (5., Obs.Sem.txn_commit, t 6, -1, 0);
      ]
  in
  (match Obs.Checker.check late with
  | [ v ] -> Alcotest.(check string) "rule name" "epoch-fencing" v.Obs.Checker.rule
  | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs));
  (* Rounds wholly inside one view are clean — including after a change. *)
  let clean =
    synthetic_trace
      [
        (1., Obs.Sem.view_change, None, 1, 4);
        (2., Obs.Sem.commit_send, t 7, 2, 3);
        (3., Obs.Sem.vote_recv, t 7, 1, 1);
        (4., Obs.Sem.vote_recv, t 7, 2, 1);
        (5., Obs.Sem.txn_commit, t 7, -1, 0);
      ]
  in
  Alcotest.(check int) "clean trace has no violations" 0
    (List.length (Obs.Checker.check clean));
  (* Commits in different epochs may use disjoint voter sets: the pairwise
     write-quorum intersection fallback must not compare across views. *)
  let cross_view =
    synthetic_trace
      [
        (1., Obs.Sem.commit_send, t 8, 2, 3);
        (2., Obs.Sem.vote_recv, t 8, 1, 1);
        (3., Obs.Sem.vote_recv, t 8, 2, 1);
        (4., Obs.Sem.txn_commit, t 8, -1, 0);
        (5., Obs.Sem.view_change, None, 1, 4);
        (6., Obs.Sem.commit_send, t 9, 2, 3);
        (7., Obs.Sem.vote_recv, t 9, 8, 1);
        (8., Obs.Sem.vote_recv, t 9, 9, 1);
        (9., Obs.Sem.txn_commit, t 9, -1, 0);
      ]
  in
  Alcotest.(check int) "disjoint voter sets across views are legal" 0
    (List.length (Obs.Checker.check cross_view))

(* {2 Churn generators} *)

let churn_knobs =
  { Harness.Chaos.default_knobs with spares = 2; reconfigs = 3; horizon = 6_000. }

let test_churn_schedule_deterministic_and_valid () =
  let a = Harness.Chaos.generate churn_knobs ~seed:42 in
  let b = Harness.Chaos.generate churn_knobs ~seed:42 in
  Alcotest.(check bool) "same seed, same schedule" true (a = b);
  (* Membership churn rides on top of the classic schedule: switching it
     off reproduces the pre-churn prefix byte-for-byte. *)
  let classic = Harness.Chaos.generate { churn_knobs with reconfigs = 0 } ~seed:42 in
  let prefix n l = List.filteri (fun i _ -> i < n) l in
  Alcotest.(check bool) "classic schedule is a prefix" true
    (prefix (List.length classic) a = classic);
  (* Every generated schedule must pass static membership validation. *)
  for seed = 1 to 40 do
    let events = Harness.Chaos.generate churn_knobs ~seed in
    match
      Harness.Scenario.validate
        ~members:(List.init churn_knobs.Harness.Chaos.nodes Fun.id)
        ~nodes:(churn_knobs.Harness.Chaos.nodes + churn_knobs.Harness.Chaos.spares)
        events
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d generated an invalid schedule: %s" seed msg
  done

let test_rolling_schedule_replaces_every_node () =
  let knobs = { Harness.Chaos.rolling_knobs with nodes = 7 } in
  for seed = 1 to 20 do
    let events = Harness.Chaos.generate_rolling knobs ~seed in
    let leavers =
      List.filter_map
        (function Harness.Scenario.Replace { leaving; _ } -> Some leaving | _ -> None)
        events
      |> List.sort Int.compare
    in
    Alcotest.(check (list int))
      (Printf.sprintf "seed %d replaces every node once" seed)
      [ 0; 1; 2; 3; 4; 5; 6 ] leavers;
    match
      Harness.Scenario.validate ~members:(List.init 7 Fun.id)
        ~nodes:(7 + knobs.Harness.Chaos.spares) events
    with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d rolling schedule invalid: %s" seed msg
  done;
  Alcotest.check_raises "rolling needs a spare"
    (Invalid_argument "Chaos.generate_rolling: rolling restarts need spares >= 1")
    (fun () ->
      ignore
        (Harness.Chaos.generate_rolling
           { Harness.Chaos.rolling_knobs with spares = 0 }
           ~seed:1))

let test_rolling_chaos_run_passes () =
  (* Seed 3 at this size once exposed a reconfiguration-queue reordering
     bug (a replace validated against a view an earlier queued replace had
     yet to leave); keep it as a regression anchor. *)
  let knobs = { Harness.Chaos.rolling_knobs with nodes = 7; clients = 10 } in
  let result = Harness.Chaos.run_one ~rolling:true knobs ~seed:3 in
  Alcotest.(check bool) "rolling run passed" true (Harness.Chaos.passed result);
  Alcotest.(check int) "every node replaced once" 7 result.Harness.Chaos.view_changes;
  Alcotest.(check int) "final epoch" 7 result.Harness.Chaos.final_epoch;
  Alcotest.(check bool) "made commit progress" true (result.Harness.Chaos.commits > 0)

let suite =
  [
    Alcotest.test_case "stale-epoch request is fenced" `Quick
      test_stale_epoch_request_fenced;
    Alcotest.test_case "stale-epoch reply is fenced" `Quick test_stale_epoch_reply_fenced;
    Alcotest.test_case "join syncs state and extends the view" `Quick
      test_join_syncs_state_and_extends_view;
    Alcotest.test_case "leave hands off state and shrinks the view" `Quick
      test_leave_hands_off_and_shrinks_view;
    Alcotest.test_case "rolling replaces recycle departed nodes" `Quick
      test_rolling_replaces_recycle_departed_nodes;
    Alcotest.test_case "malformed reconfigurations are rejected" `Quick
      test_departed_node_cannot_be_removed_again;
    Alcotest.test_case "state transfer races lease rescue" `Quick
      test_sync_races_lease_rescue;
    Alcotest.test_case "verdicts read only current members" `Quick
      test_latest_value_ignores_departed_replicas;
    Alcotest.test_case "scenario validation of membership ops" `Quick
      test_scenario_validate_membership;
    Alcotest.test_case "checker epoch-fencing rule" `Quick
      test_checker_epoch_fencing_rule;
    Alcotest.test_case "churn schedules deterministic and valid" `Quick
      test_churn_schedule_deterministic_and_valid;
    Alcotest.test_case "rolling schedules replace every node" `Quick
      test_rolling_schedule_replaces_every_node;
    Alcotest.test_case "rolling chaos run passes" `Quick test_rolling_chaos_run_passes;
  ]
