(* Unit and property tests for the util substrate: heap ordering, RNG
   determinism and distributions, streaming stats, histograms, tables. *)

module Int_heap = Util.Heap.Make (Int)

let test_heap_basic () =
  let h = Int_heap.create () in
  Alcotest.(check bool) "fresh heap empty" true (Int_heap.is_empty h);
  List.iter (Int_heap.add h) [ 5; 3; 8; 1; 9; 2 ];
  Alcotest.(check int) "length" 6 (Int_heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Int_heap.min_elt h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 5; 8; 9 ] (Int_heap.to_sorted_list h);
  Alcotest.(check int) "to_sorted_list is non-destructive" 6 (Int_heap.length h);
  Int_heap.clear h;
  Alcotest.(check (option int)) "cleared" None (Int_heap.pop h)

let heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Int_heap.create () in
      List.iter (Int_heap.add h) xs;
      let rec drain acc =
        match Int_heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

(* Model-based check: drive the heap and a sorted-list model through the
   same random add/pop interleaving; every observation (length, min, pop
   results, final drain) must agree, which pins the heap invariant. *)
let heap_interleaving_matches_model =
  QCheck.Test.make ~name:"heap matches sorted model under add/pop interleavings"
    ~count:300
    QCheck.(list (option int))
    (fun ops ->
      let h = Int_heap.create () in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
            Int_heap.add h x;
            model := List.sort Int.compare (x :: !model);
            Int_heap.length h = List.length !model
            && Int_heap.min_elt h = (match !model with [] -> None | m :: _ -> Some m)
          | None ->
            let expected =
              match !model with
              | [] -> None
              | m :: rest ->
                model := rest;
                Some m
            in
            Int_heap.pop h = expected)
        ops
      && Int_heap.to_sorted_list h = !model)

let heap_to_sorted_list_sorted =
  QCheck.Test.make ~name:"to_sorted_list is the sorted multiset" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Int_heap.create () in
      List.iter (Int_heap.add h) xs;
      Int_heap.to_sorted_list h = List.sort Int.compare xs)

(* The engine's hot path relies on unsafe_top/unsafe_pop; they must observe
   exactly what the option-returning API observes. *)
let heap_unsafe_ops_agree =
  QCheck.Test.make ~name:"unsafe_top/unsafe_pop agree with min_elt/pop" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      QCheck.assume (xs <> []);
      let h = Int_heap.create () and h' = Int_heap.create () in
      List.iter (Int_heap.add h) xs;
      List.iter (Int_heap.add h') xs;
      let ok = ref true in
      while not (Int_heap.is_empty h) do
        if Int_heap.min_elt h <> Some (Int_heap.unsafe_top h) then ok := false;
        if Some (Int_heap.unsafe_pop h) <> Int_heap.pop h' then ok := false
      done;
      !ok && Int_heap.pop h' = None)

let test_rng_deterministic () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.int64 a) (Util.Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Util.Rng.create 42 in
  let child = Util.Rng.split a in
  (* The child stream must differ from the parent's continuation. *)
  let differs = ref false in
  for _ = 1 to 20 do
    if not (Int64.equal (Util.Rng.int64 a) (Util.Rng.int64 child)) then differs := true
  done;
  Alcotest.(check bool) "split diverges" true !differs

let rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_nat (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Util.Rng.create seed in
      let x = Util.Rng.int rng bound in
      x >= 0 && x < bound)

let rng_float_bounds =
  QCheck.Test.make ~name:"rng float stays in bounds" ~count:500 QCheck.small_nat
    (fun seed ->
      let rng = Util.Rng.create seed in
      let x = Util.Rng.float rng 10.0 in
      x >= 0. && x < 10.)

let zipf_bounds =
  QCheck.Test.make ~name:"zipf index in range" ~count:300
    QCheck.(triple small_nat (int_range 1 200) (float_range 0. 1.5))
    (fun (seed, n, skew) ->
      let rng = Util.Rng.create seed in
      let x = Util.Rng.zipf rng ~n ~skew in
      x >= 0 && x < n)

let test_zipf_skew_prefers_small () =
  let rng = Util.Rng.create 1 in
  let hits = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let i = Util.Rng.zipf rng ~n:10 ~skew:1.0 in
    hits.(i) <- hits.(i) + 1
  done;
  Alcotest.(check bool) "rank 0 hit more than rank 9" true (hits.(0) > 2 * hits.(9))

let test_stats () =
  let s = Util.Stats.create () in
  List.iter (Util.Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Util.Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Util.Stats.mean s);
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 (Util.Stats.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Util.Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Util.Stats.max s);
  Alcotest.(check (float 1e-9)) "median-ish" 4.0 (Util.Stats.percentile s 50.)

let stats_merge_matches_sequential =
  QCheck.Test.make ~name:"stats merge equals sequential" ~count:200
    QCheck.(pair (list (float_range (-100.) 100.)) (list (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      QCheck.assume (xs <> [] && ys <> []);
      let a = Util.Stats.create () and b = Util.Stats.create () in
      List.iter (Util.Stats.add a) xs;
      List.iter (Util.Stats.add b) ys;
      let merged = Util.Stats.merge a b in
      let all = Util.Stats.create () in
      List.iter (Util.Stats.add all) (xs @ ys);
      Float.abs (Util.Stats.mean merged -. Util.Stats.mean all) < 1e-6
      && Float.abs (Util.Stats.stddev merged -. Util.Stats.stddev all) < 1e-6
      && Util.Stats.count merged = Util.Stats.count all)

let test_histogram () =
  let h = Util.Histogram.create ~buckets:4 ~lo:0. ~hi:8. () in
  List.iter (Util.Histogram.add h) [ -1.; 0.; 1.; 3.; 5.; 7.; 9.; 100. ];
  Alcotest.(check int) "count" 8 (Util.Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Util.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Util.Histogram.overflow h);
  let buckets = Util.Histogram.bucket_counts h in
  Alcotest.(check int) "buckets" 4 (Array.length buckets);
  let total_in_range = Array.fold_left (fun acc (_, _, n) -> acc + n) 0 buckets in
  Alcotest.(check int) "in-range total" 5 total_in_range;
  Alcotest.(check bool) "render non-empty" true (String.length (Util.Histogram.render h) > 0)

let test_hdr_percentiles () =
  let h = Util.Hdr.create () in
  Alcotest.(check (float 0.)) "empty percentile" 0. (Util.Hdr.percentile h 50.);
  for i = 1 to 10_000 do
    Util.Hdr.add h (float_of_int i /. 10.)
  done;
  Alcotest.(check int) "count" 10_000 (Util.Hdr.count h);
  Alcotest.(check (float 1e-9)) "exact min" 0.1 (Util.Hdr.min_value h);
  Alcotest.(check (float 1e-9)) "exact max" 1000. (Util.Hdr.max_value h);
  Alcotest.(check (float 1e-9)) "p0 is min" 0.1 (Util.Hdr.percentile h 0.);
  Alcotest.(check (float 1e-9)) "p100 is max" 1000. (Util.Hdr.percentile h 100.);
  (* Uniform samples: each quoted quantile within the bucket error bound. *)
  List.iter
    (fun p ->
      let expected = p /. 100. *. 1000. in
      let got = Util.Hdr.percentile h p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f (%.2f) within 3%% of %.2f" p got expected)
        true
        (Float.abs (got -. expected) /. expected < 0.03))
    [ 50.; 90.; 95.; 99. ];
  Util.Hdr.reset h;
  Alcotest.(check int) "reset zeroes count" 0 (Util.Hdr.count h)

let test_hdr_merge_and_clamp () =
  let a = Util.Hdr.create () and b = Util.Hdr.create () in
  List.iter (Util.Hdr.add a) [ 1.; 2.; 3. ];
  List.iter (Util.Hdr.add b) [ 100.; 200. ];
  Util.Hdr.merge ~into:a b;
  Alcotest.(check int) "merged count" 5 (Util.Hdr.count a);
  Alcotest.(check (float 1e-9)) "merged max" 200. (Util.Hdr.max_value a);
  (* NaN and negatives clamp to 0 instead of poisoning aggregates. *)
  let c = Util.Hdr.create () in
  Util.Hdr.add c Float.nan;
  Util.Hdr.add c (-5.);
  Alcotest.(check int) "clamped samples recorded" 2 (Util.Hdr.count c);
  Alcotest.(check (float 1e-9)) "clamped to zero" 0. (Util.Hdr.max_value c);
  let mismatched = Util.Hdr.create ~rel_error:0.05 () in
  Alcotest.check_raises "layout mismatch rejected"
    (Invalid_argument "Hdr.merge: incompatible layouts") (fun () ->
      Util.Hdr.merge ~into:a mismatched)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let test_table_render () =
  let t = Util.Table.create ~header:[ "name"; "value" ] in
  Util.Table.add_row t [ "alpha"; "1" ];
  Util.Table.add_row t [ "b" ];
  let rendered = Util.Table.render t in
  Alcotest.(check bool) "contains header" true (contains rendered "name");
  Alcotest.(check bool) "contains row" true (contains rendered "alpha");
  let csv = Util.Table.render_csv t in
  Alcotest.(check bool) "csv header" true (contains csv "name,value")

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      heap_sorts;
      heap_interleaving_matches_model;
      heap_to_sorted_list_sorted;
      heap_unsafe_ops_agree;
      rng_bounds;
      rng_float_bounds;
      zipf_bounds;
      stats_merge_matches_sequential;
    ]

let suite =
  [
    Alcotest.test_case "heap basics" `Quick test_heap_basic;
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "zipf skew shape" `Quick test_zipf_skew_prefers_small;
    Alcotest.test_case "stats accumulators" `Quick test_stats;
    Alcotest.test_case "histogram buckets" `Quick test_histogram;
    Alcotest.test_case "hdr percentiles" `Quick test_hdr_percentiles;
    Alcotest.test_case "hdr merge and clamp" `Quick test_hdr_merge_and_clamp;
    Alcotest.test_case "table rendering" `Quick test_table_render;
  ]
  @ qcheck_cases
