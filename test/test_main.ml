let () = Alcotest.run "qr_dtm" [
      ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("quorum", Test_quorum.suite);
      ("store", Test_store.suite);
      ("core", Test_core_protocol.suite);
      ("oracle", Test_oracle.suite);
      ("executor", Test_executor.suite);
      ("cluster", Test_cluster.suite);
      ("faults", Test_faults.suite);
      ("membership", Test_membership.suite);
      ("extensions", Test_extensions.suite);
      ("serializability", Test_serializability.suite);
      ("harness", Test_harness.suite);
      ("obs", Test_obs.suite);
      ("online", Test_online.suite);
      ("parallel", Test_parallel.suite);
      ("smoke", Test_smoke.suite);
      ("structures", Test_structures.suite);
      ("batch", Test_batch.suite);
      ("determinism", Test_determinism.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("baselines", Test_baselines.suite);
      ("shard", Test_shard.suite);
    ]
