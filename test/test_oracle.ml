(* Negative-path tests for the 1-copy-serializability oracle: hand-crafted
   histories that violate each invariant must be rejected with a message
   naming the offence.  The positive paths are exercised implicitly by
   every cluster test that ends in [Cluster.check_consistency]. *)

open Core

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let expect_violation ~name ~needle oracle =
  match Oracle.check oracle with
  | Ok () -> Alcotest.failf "%s: expected a violation, got Ok" name
  | Error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: %S appears in %S" name needle msg)
      true (contains ~needle msg)

let expect_ok ~name oracle =
  match Oracle.check oracle with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: unexpected violation: %s" name msg

(* A clean history: versions 1 and 2 of object 7 installed in order, each
   update reading the version it overwrites, and a read-only transaction
   observing a snapshot that was genuinely current. *)
let test_consistent_history () =
  let oracle = Oracle.create () in
  Oracle.note_commit oracle ~txn:1 ~decision:10. ~window_start:9.
    ~reads:[ (7, 0) ] ~writes:[ (7, 1) ];
  Oracle.note_commit oracle ~txn:2 ~decision:20. ~window_start:19.
    ~reads:[ (7, 1) ] ~writes:[ (7, 2) ];
  Oracle.note_commit oracle ~txn:3 ~decision:25. ~window_start:24.
    ~reads:[ (7, 2) ] ~writes:[];
  expect_ok ~name:"consistent history" oracle;
  Alcotest.(check int) "commits recorded" 3 (Oracle.commits_recorded oracle)

(* Stale read: txn 2 installs version 2 at t=20, but txn 3's validation
   window only opens at t=30 and it still claims to have read version 1 —
   2PC re-validates every entry, so this can only be a protocol bug. *)
let test_stale_read () =
  let oracle = Oracle.create () in
  Oracle.note_commit oracle ~txn:1 ~decision:10. ~window_start:9.
    ~reads:[ (7, 0) ] ~writes:[ (7, 1) ];
  Oracle.note_commit oracle ~txn:2 ~decision:20. ~window_start:19.
    ~reads:[ (7, 1) ] ~writes:[ (7, 2) ];
  Oracle.note_commit oracle ~txn:3 ~decision:31. ~window_start:30.
    ~reads:[ (7, 1) ] ~writes:[ (7, 3) ];
  expect_violation ~name:"stale read" ~needle:"stale read" oracle

(* Version gap: object 5 goes 1 then 3 — version 2 was never installed, so
   some commit was lost or misnumbered. *)
let test_version_gap () =
  let oracle = Oracle.create () in
  Oracle.note_commit oracle ~txn:1 ~decision:10. ~window_start:9.
    ~reads:[ (5, 0) ] ~writes:[ (5, 1) ];
  Oracle.note_commit oracle ~txn:2 ~decision:20. ~window_start:19.
    ~reads:[ (5, 1) ] ~writes:[ (5, 3) ];
  expect_violation ~name:"version gap" ~needle:"expected version 2" oracle

(* Duplicate writer: two transactions both claim to have installed version
   1 of object 9 — a split-brain commit. *)
let test_duplicate_writer () =
  let oracle = Oracle.create () in
  Oracle.note_commit oracle ~txn:1 ~decision:10. ~window_start:9.
    ~reads:[ (9, 0) ] ~writes:[ (9, 1) ];
  Oracle.note_commit oracle ~txn:2 ~decision:12. ~window_start:11.
    ~reads:[ (9, 0) ] ~writes:[ (9, 1) ];
  expect_violation ~name:"duplicate writer" ~needle:"written by both" oracle

(* Phantom read: a committed read of a version nobody ever installed. *)
let test_phantom_version () =
  let oracle = Oracle.create () in
  Oracle.note_commit oracle ~txn:1 ~decision:10. ~window_start:9.
    ~reads:[ (4, 2) ] ~writes:[ (4, 1) ];
  expect_violation ~name:"phantom version" ~needle:"never committed" oracle

(* Inconsistent read-only snapshot: object 1's version 0 dies at t=10
   (overwritten by v1), object 2's version 1 is only born at t=20 — no
   instant ever had both current, yet txn 4 claims to have read both. *)
let test_inconsistent_snapshot () =
  let oracle = Oracle.create () in
  Oracle.note_commit oracle ~txn:1 ~decision:10. ~window_start:9.
    ~reads:[ (1, 0) ] ~writes:[ (1, 1) ];
  Oracle.note_commit oracle ~txn:2 ~decision:20. ~window_start:19.
    ~reads:[ (2, 0) ] ~writes:[ (2, 1) ];
  Oracle.note_commit oracle ~txn:4 ~decision:30. ~window_start:29.
    ~reads:[ (1, 0); (2, 1) ] ~writes:[];
  expect_violation ~name:"inconsistent snapshot" ~needle:"inconsistent snapshot"
    oracle

(* The same pair of reads in an UPDATE transaction is judged by the
   stricter per-entry freshness rule, not the snapshot rule: version 0 of
   object 1 was overwritten at t=10, before the window opened at t=29. *)
let test_update_snapshot_stricter () =
  let oracle = Oracle.create () in
  Oracle.note_commit oracle ~txn:1 ~decision:10. ~window_start:9.
    ~reads:[ (1, 0) ] ~writes:[ (1, 1) ];
  Oracle.note_commit oracle ~txn:2 ~decision:20. ~window_start:19.
    ~reads:[ (2, 0) ] ~writes:[ (2, 1) ];
  Oracle.note_commit oracle ~txn:4 ~decision:30. ~window_start:29.
    ~reads:[ (1, 0); (2, 1) ] ~writes:[ (3, 1) ];
  expect_violation ~name:"update with dead read" ~needle:"stale read" oracle

(* A read-only snapshot that trails real time is fine: txn 3 reads (1, 0)
   after v1 was installed, but v0 and v1 of the OTHER object coexisted
   with it before t=10, so a serialization instant exists. *)
let test_trailing_snapshot_ok () =
  let oracle = Oracle.create () in
  Oracle.note_commit oracle ~txn:1 ~decision:10. ~window_start:9.
    ~reads:[ (1, 0) ] ~writes:[ (1, 1) ];
  Oracle.note_commit oracle ~txn:3 ~decision:15. ~window_start:14.
    ~reads:[ (1, 0); (2, 0) ] ~writes:[];
  expect_ok ~name:"trailing read-only snapshot" oracle

let suite =
  [
    Alcotest.test_case "consistent history accepted" `Quick test_consistent_history;
    Alcotest.test_case "stale read rejected" `Quick test_stale_read;
    Alcotest.test_case "version gap rejected" `Quick test_version_gap;
    Alcotest.test_case "duplicate writer rejected" `Quick test_duplicate_writer;
    Alcotest.test_case "phantom version rejected" `Quick test_phantom_version;
    Alcotest.test_case "inconsistent read-only snapshot rejected" `Quick
      test_inconsistent_snapshot;
    Alcotest.test_case "update transactions judged stricter" `Quick
      test_update_snapshot_stricter;
    Alcotest.test_case "trailing read-only snapshot accepted" `Quick
      test_trailing_snapshot_ok;
  ]
