(* Observability subsystem: tracer ring buffer, trace determinism and
   non-perturbation, the offline protocol checker (one deliberately violated
   synthetic trace per rule), windowed telemetry, and the Metrics reset
   audit. *)

let run_traced ?(tracer = Obs.Tracer.null) ?telemetry ~seed () =
  Harness.Experiment.run ~nodes:5 ~seed ~clients:4 ~warmup:200. ~duration:1_000.
    ~tracer ?telemetry
    ~config:(Core.Config.default Core.Config.Closed)
    ~benchmark:Benchmarks.Bank.benchmark
    ~params:{ Benchmarks.Workload.default_params with objects = 32; calls = 2; read_ratio = 0.4; key_skew = 0.3 }
    ()

let contains s frag =
  let n = String.length frag in
  let rec go i = i + n <= String.length s && (String.sub s i n = frag || go (i + 1)) in
  go 0

(* {2 Tracer} *)

let test_ring_overflow () =
  let t = Obs.Tracer.create ~capacity:4 () in
  for i = 0 to 6 do
    Obs.Tracer.emit t ~time:(float_of_int i) ~kind:Obs.Sem.txn_begin ~a:i ()
  done;
  Alcotest.(check int) "length capped" 4 (Obs.Tracer.length t);
  Alcotest.(check int) "dropped counted" 3 (Obs.Tracer.dropped t);
  Alcotest.(check (list int)) "oldest evicted first" [ 3; 4; 5; 6 ]
    (List.map (fun (e : Obs.Tracer.event) -> e.a) (Obs.Tracer.events t));
  Obs.Tracer.clear t;
  Alcotest.(check int) "clear empties" 0 (Obs.Tracer.length t);
  Alcotest.(check int) "clear zeroes dropped" 0 (Obs.Tracer.dropped t)

let test_null_tracer_inert () =
  Obs.Tracer.emit Obs.Tracer.null ~time:1. ~kind:Obs.Sem.txn_begin ();
  Alcotest.(check bool) "disabled" false (Obs.Tracer.enabled Obs.Tracer.null);
  Alcotest.(check int) "no events" 0 (Obs.Tracer.length Obs.Tracer.null)

let test_trace_determinism () =
  let tracer1 = Obs.Tracer.create () in
  let tracer2 = Obs.Tracer.create () in
  let r1 = run_traced ~tracer:tracer1 ~seed:11 () in
  let r2 = run_traced ~tracer:tracer2 ~seed:11 () in
  Alcotest.(check bool) "events captured" true (Obs.Tracer.length tracer1 > 0);
  Alcotest.(check int) "same event count" (Obs.Tracer.length tracer1)
    (Obs.Tracer.length tracer2);
  Alcotest.(check string) "byte-identical chrome trace"
    (Obs.Export.chrome_json tracer1) (Obs.Export.chrome_json tracer2);
  Alcotest.(check bool) "identical results" true (r1 = r2)

let test_tracing_does_not_perturb () =
  let traced = run_traced ~tracer:(Obs.Tracer.create ()) ~seed:12 () in
  let untraced = run_traced ~seed:12 () in
  Alcotest.(check bool) "traced run = untraced run" true (traced = untraced)

let test_txn_history () =
  let tracer = Obs.Tracer.create () in
  let _ = run_traced ~tracer ~seed:13 () in
  (* Find a transaction that committed and check its history renders. *)
  let txn =
    List.find_map
      (fun (e : Obs.Tracer.event) ->
        if e.ekind = Obs.Sem.txn_commit then Some e.txn else None)
      (Obs.Tracer.events tracer)
  in
  match txn with
  | None -> Alcotest.fail "no committed transaction in trace"
  | Some txn ->
    let history = Obs.Export.txn_history tracer ~txn in
    Alcotest.(check bool) "history non-empty" true (String.length history > 0);
    Alcotest.(check bool) "mentions commit" true (contains history "txn.commit");
    Alcotest.(check string) "unknown txn is empty" ""
      (Obs.Export.txn_history tracer ~txn:(-42))

(* {2 Checker: one deliberately violated synthetic trace per rule} *)

let ev ?(time = 0.) ?(node = -1) ?(txn = -1) ?(oid = -1) ?(a = -1) ?(b = -1)
    ?(x = 0.) kind : Obs.Tracer.event =
  { time; ekind = kind; node; txn; oid; a; b; x }

let rules violations =
  List.sort_uniq String.compare
    (List.map (fun (v : Obs.Checker.violation) -> v.rule) violations)

let test_checker_clean_commit () =
  let trace =
    [
      ev ~time:1. ~txn:1 ~a:2 ~b:3 Obs.Sem.commit_send;
      ev ~time:2. ~txn:1 ~a:0 ~b:1 Obs.Sem.vote_recv;
      ev ~time:3. ~txn:1 ~a:1 ~b:1 Obs.Sem.vote_recv;
      ev ~time:4. ~txn:1 ~a:2 ~b:1 Obs.Sem.vote_recv;
      ev ~time:5. ~txn:1 Obs.Sem.txn_commit;
    ]
  in
  Alcotest.(check (list string)) "clean" []
    (rules (Obs.Checker.check ~is_write_quorum:(fun _ -> true) trace))

let test_checker_commit_dissent () =
  let trace =
    [
      ev ~time:1. ~txn:1 Obs.Sem.commit_send;
      ev ~time:2. ~txn:1 ~a:0 ~b:1 Obs.Sem.vote_recv;
      (* voter 1 said abort (commit bit clear) yet the txn commits *)
      ev ~time:3. ~txn:1 ~a:1 ~b:0 Obs.Sem.vote_recv;
      ev ~time:4. ~txn:1 Obs.Sem.txn_commit;
    ]
  in
  Alcotest.(check (list string)) "dissenting vote flagged" [ "commit-quorum" ]
    (rules (Obs.Checker.check ~is_write_quorum:(fun _ -> true) trace))

let test_checker_commit_invalid_quorum () =
  let trace =
    [
      ev ~time:1. ~txn:1 Obs.Sem.commit_send;
      ev ~time:2. ~txn:1 ~a:0 ~b:1 Obs.Sem.vote_recv;
      ev ~time:3. ~txn:1 Obs.Sem.txn_commit;
    ]
  in
  Alcotest.(check (list string)) "invalid voter set flagged" [ "commit-quorum" ]
    (rules (Obs.Checker.check ~is_write_quorum:(fun _ -> false) trace));
  Alcotest.(check (list string)) "same set accepted when valid" []
    (rules (Obs.Checker.check ~is_write_quorum:(fun _ -> true) trace))

let test_checker_commit_pairwise_fallback () =
  (* Without [is_write_quorum] the checker demands pairwise intersection of
     committed voter sets: [0;1] vs [2;3] are disjoint. *)
  let trace =
    [
      ev ~time:1. ~txn:1 Obs.Sem.commit_send;
      ev ~time:2. ~txn:1 ~a:0 ~b:1 Obs.Sem.vote_recv;
      ev ~time:2.5 ~txn:1 ~a:1 ~b:1 Obs.Sem.vote_recv;
      ev ~time:3. ~txn:1 Obs.Sem.txn_commit;
      ev ~time:4. ~txn:2 Obs.Sem.commit_send;
      ev ~time:5. ~txn:2 ~a:2 ~b:1 Obs.Sem.vote_recv;
      ev ~time:5.5 ~txn:2 ~a:3 ~b:1 Obs.Sem.vote_recv;
      ev ~time:6. ~txn:2 Obs.Sem.txn_commit;
    ]
  in
  Alcotest.(check (list string)) "disjoint write quorums flagged"
    [ "commit-quorum" ]
    (rules (Obs.Checker.check trace))

let test_checker_lease_overlap () =
  let trace =
    [
      ev ~time:1. ~node:0 ~oid:5 ~txn:1 Obs.Sem.lease_grant;
      (* txn 2 granted the same (node, oid) lease before txn 1 released *)
      ev ~time:2. ~node:0 ~oid:5 ~txn:2 Obs.Sem.lease_grant;
    ]
  in
  Alcotest.(check (list string)) "overlap flagged" [ "lease-overlap" ]
    (rules (Obs.Checker.check trace));
  let clean =
    [
      ev ~time:1. ~node:0 ~oid:5 ~txn:1 Obs.Sem.lease_grant;
      ev ~time:2. ~node:0 ~oid:5 ~txn:1 ~a:0 Obs.Sem.lease_release;
      ev ~time:3. ~node:0 ~oid:5 ~txn:2 Obs.Sem.lease_grant;
    ]
  in
  Alcotest.(check (list string)) "release clears" [] (rules (Obs.Checker.check clean));
  let other_node =
    [
      ev ~time:1. ~node:0 ~oid:5 ~txn:1 Obs.Sem.lease_grant;
      ev ~time:2. ~node:1 ~oid:5 ~txn:2 Obs.Sem.lease_grant;
    ]
  in
  Alcotest.(check (list string)) "distinct replicas independent" []
    (rules (Obs.Checker.check other_node))

let test_checker_partial_abort_scope () =
  let wrong_resume =
    [
      ev ~time:1. ~txn:3 ~a:2 Obs.Sem.txn_partial_abort;
      ev ~time:2. ~txn:3 ~a:1 Obs.Sem.scope_resume;
    ]
  in
  Alcotest.(check (list string)) "wrong resume target flagged"
    [ "partial-abort-scope" ]
    (rules (Obs.Checker.check wrong_resume));
  let orphan_resume = [ ev ~time:1. ~txn:3 ~a:2 Obs.Sem.scope_resume ] in
  Alcotest.(check (list string)) "resume without pending flagged"
    [ "partial-abort-scope" ]
    (rules (Obs.Checker.check orphan_resume));
  let exact =
    [
      ev ~time:1. ~txn:3 ~a:2 Obs.Sem.txn_partial_abort;
      ev ~time:2. ~txn:3 ~a:2 Obs.Sem.scope_resume;
    ]
  in
  Alcotest.(check (list string)) "exact unwind clean" []
    (rules (Obs.Checker.check exact));
  let root_fallback =
    [
      ev ~time:1. ~txn:3 ~a:2 Obs.Sem.txn_partial_abort;
      ev ~time:2. ~txn:3 ~a:1 Obs.Sem.txn_root_abort;
    ]
  in
  Alcotest.(check (list string)) "root abort is a legal fallback" []
    (rules (Obs.Checker.check root_fallback))

let test_checker_rescue_evidence () =
  let bare = [ ev ~time:1. ~node:2 ~txn:7 ~a:1 ~b:0 Obs.Sem.rescue ] in
  Alcotest.(check (list string)) "rescue without evidence flagged"
    [ "rescue-evidence" ]
    (rules (Obs.Checker.check bare));
  let with_apply =
    [
      ev ~time:0. ~node:1 ~txn:7 ~a:1 Obs.Sem.apply;
      ev ~time:1. ~node:2 ~txn:7 ~a:1 ~b:0 Obs.Sem.rescue;
    ]
  in
  Alcotest.(check (list string)) "apply is evidence" []
    (rules (Obs.Checker.check with_apply));
  (* b = 1: version advance — possibly another transaction's commit across
     membership views, so no per-txn evidence is demanded. *)
  let version_advance = [ ev ~time:1. ~node:2 ~txn:7 ~a:1 ~b:1 Obs.Sem.rescue ] in
  Alcotest.(check (list string)) "version-advance rescue exempt" []
    (rules (Obs.Checker.check version_advance))

let test_checker_widen_read () =
  let missing_witness =
    [
      ev ~time:1. ~txn:4 ~a:5 Obs.Sem.widen_add;
      (* fan-out at t=2 reaches nodes 0 and 1 but not flagged witness 5 *)
      ev ~time:2. ~txn:4 ~oid:9 ~a:0 Obs.Sem.read_send;
      ev ~time:2. ~txn:4 ~oid:9 ~a:1 Obs.Sem.read_send;
      ev ~time:3. ~txn:4 ~a:1 Obs.Sem.txn_end;
    ]
  in
  Alcotest.(check (list string)) "missing flagged witness" [ "widen-read" ]
    (rules (Obs.Checker.check missing_witness));
  let includes_witness =
    [
      ev ~time:1. ~txn:4 ~a:5 Obs.Sem.widen_add;
      ev ~time:2. ~txn:4 ~oid:9 ~a:0 Obs.Sem.read_send;
      ev ~time:2. ~txn:4 ~oid:9 ~a:5 Obs.Sem.read_send;
      ev ~time:3. ~txn:4 ~a:1 Obs.Sem.txn_end;
    ]
  in
  Alcotest.(check (list string)) "widened fan-out clean" []
    (rules (Obs.Checker.check includes_witness));
  let dropped_witness =
    [
      ev ~time:1. ~txn:4 ~a:5 Obs.Sem.widen_add;
      ev ~time:1.5 ~txn:4 ~a:5 Obs.Sem.widen_drop;
      ev ~time:2. ~txn:4 ~oid:9 ~a:0 Obs.Sem.read_send;
      ev ~time:3. ~txn:4 ~a:1 Obs.Sem.txn_end;
    ]
  in
  Alcotest.(check (list string)) "pruned witness not demanded" []
    (rules (Obs.Checker.check dropped_witness))

let test_checker_on_real_trace () =
  let tracer = Obs.Tracer.create () in
  let _ = run_traced ~tracer ~seed:14 () in
  Alcotest.(check (list string)) "healthy run passes all rules" []
    (rules (Obs.Checker.check (Obs.Tracer.events tracer)))

(* {2 Telemetry} *)

let test_telemetry_rates () =
  let tele = Obs.Telemetry.create ~window:500. in
  Obs.Telemetry.record tele ~time:0. ~commits:0 ~aborts:0 ~in_flight:0
    ~lease_expirations:0 ~by_kind:[ ("apply", 0) ] ();
  Obs.Telemetry.record tele ~time:500. ~commits:10 ~aborts:2 ~in_flight:3
    ~lease_expirations:1 ~by_kind:[ ("apply", 50) ] ();
  Alcotest.(check int) "two samples" 2 (Obs.Telemetry.samples tele);
  Alcotest.(check (list string)) "columns"
    [ "time_ms"; "reset"; "commits_per_s"; "aborts_per_s"; "in_flight";
      "lease_expirations"; "speculation_aborts"; "batches_per_s";
      "msg_apply_per_s" ]
    (Obs.Telemetry.columns tele);
  (match Obs.Telemetry.rows tele with
  | [ (time, [ reset; commits_s; aborts_s; in_flight; lease; spec; batches_s; apply_s ]) ] ->
    Alcotest.(check (float 1e-9)) "row time" 500. time;
    Alcotest.(check (float 1e-9)) "no reset" 0. reset;
    Alcotest.(check (float 1e-9)) "commit rate" 20. commits_s;
    Alcotest.(check (float 1e-9)) "abort rate" 4. aborts_s;
    Alcotest.(check (float 1e-9)) "in-flight gauge" 3. in_flight;
    Alcotest.(check (float 1e-9)) "lease delta" 1. lease;
    Alcotest.(check (float 1e-9)) "spec abort delta" 0. spec;
    Alcotest.(check (float 1e-9)) "batch rate" 0. batches_s;
    Alcotest.(check (float 1e-9)) "apply msg rate" 100. apply_s
  | rows -> Alcotest.failf "unexpected rows: %d" (List.length rows));
  let csv = Obs.Telemetry.to_csv tele in
  Alcotest.(check bool) "csv header" true
    (String.length csv > 0 && String.sub csv 0 7 = "time_ms")

let test_telemetry_reset_window () =
  let tele = Obs.Telemetry.create ~window:500. in
  Obs.Telemetry.record tele ~time:0. ~commits:40 ~aborts:8 ~in_flight:2
    ~lease_expirations:3 ~by_kind:[ ("apply", 90) ] ();
  (* Counter reset between samples: totals step backwards. *)
  Obs.Telemetry.record tele ~time:500. ~commits:5 ~aborts:1 ~in_flight:4
    ~lease_expirations:0 ~by_kind:[ ("apply", 10) ] ();
  Obs.Telemetry.record tele ~time:1000. ~commits:15 ~aborts:2 ~in_flight:1
    ~lease_expirations:0 ~by_kind:[ ("apply", 60) ] ();
  match Obs.Telemetry.rows tele with
  | [ (_, reset_row); (_, clean_row) ] ->
    (match (reset_row, clean_row) with
    | ( [ r1; c1; a1; g1; l1; s1; b1; m1 ],
        [ r2; c2; a2; g2; l2; s2; b2; m2 ] ) ->
      Alcotest.(check (float 1e-9)) "reset flagged" 1. r1;
      Alcotest.(check bool) "reset window rates are nan" true
        (List.for_all Float.is_nan [ c1; a1; l1; s1; b1; m1 ]);
      Alcotest.(check (float 1e-9)) "gauge survives the reset window" 4. g1;
      Alcotest.(check (float 1e-9)) "clean window not flagged" 0. r2;
      Alcotest.(check (float 1e-9)) "clean commit rate" 20. c2;
      Alcotest.(check (float 1e-9)) "clean abort rate" 2. a2;
      Alcotest.(check (float 1e-9)) "clean gauge" 1. g2;
      Alcotest.(check (float 1e-9)) "clean lease delta" 0. l2;
      Alcotest.(check (float 1e-9)) "clean spec delta" 0. s2;
      Alcotest.(check (float 1e-9)) "clean batch rate" 0. b2;
      Alcotest.(check (float 1e-9)) "clean msg rate" 100. m2
    | _ -> Alcotest.fail "unexpected row shapes")
  | rows -> Alcotest.failf "unexpected rows: %d" (List.length rows)

let test_telemetry_first_sample_seeds () =
  let tele = Obs.Telemetry.create ~window:100. in
  Obs.Telemetry.record tele ~time:0. ~commits:5 ~aborts:0 ~in_flight:1
    ~lease_expirations:0 ~by_kind:[] ();
  Alcotest.(check int) "first sample yields no row" 0
    (List.length (Obs.Telemetry.rows tele))

let test_telemetry_via_experiment () =
  let tele = Obs.Telemetry.create ~window:250. in
  let with_tele = run_traced ~telemetry:tele ~seed:15 () in
  let without = run_traced ~seed:15 () in
  Alcotest.(check bool) "samples recorded" true (Obs.Telemetry.samples tele >= 2);
  Alcotest.(check bool) "telemetry does not perturb the run" true
    (with_tele = without);
  let series = Harness.Report.of_telemetry tele in
  Alcotest.(check int) "series rows match telemetry rows"
    (List.length (Obs.Telemetry.rows tele))
    (List.length series.Harness.Report.rows)

(* {2 Metrics reset audit (satellite: every accessor back to zero)} *)

let test_metrics_reset_exhaustive () =
  let m = Core.Metrics.create () in
  Core.Metrics.note_commit m ~latency:10.;
  Core.Metrics.note_read_only_commit m ~latency:5.;
  Core.Metrics.note_root_abort m;
  Core.Metrics.note_partial_abort m;
  Core.Metrics.note_ct_commit m;
  Core.Metrics.note_checkpoint m;
  Core.Metrics.note_local_read m;
  Core.Metrics.note_remote_read m;
  Core.Metrics.note_quorum_retry m;
  Core.Metrics.note_open_commit m;
  Core.Metrics.note_compensation m;
  Core.Metrics.note_sync m;
  Core.Metrics.note_recovery m ~duration:7.;
  Core.Metrics.note_lease_expired m;
  Core.Metrics.note_presumed_abort m;
  Core.Metrics.note_status_rescue m;
  Core.Metrics.note_commit_deadline_abort m;
  Core.Metrics.note_read_widening m;
  Core.Metrics.note_stall m;
  let accessors =
    [
      ("commits", Core.Metrics.commits);
      ("read_only_commits", Core.Metrics.read_only_commits);
      ("root_aborts", Core.Metrics.root_aborts);
      ("partial_aborts", Core.Metrics.partial_aborts);
      ("total_aborts", Core.Metrics.total_aborts);
      ("ct_commits", Core.Metrics.ct_commits);
      ("checkpoints", Core.Metrics.checkpoints);
      ("local_reads", Core.Metrics.local_reads);
      ("remote_reads", Core.Metrics.remote_reads);
      ("quorum_retries", Core.Metrics.quorum_retries);
      ("open_commits", Core.Metrics.open_commits);
      ("compensations", Core.Metrics.compensations);
      ("syncs", Core.Metrics.syncs);
      ("recoveries", Core.Metrics.recoveries);
      ("lease_expirations", Core.Metrics.lease_expirations);
      ("presumed_aborts", Core.Metrics.presumed_aborts);
      ("status_rescued_commits", Core.Metrics.status_rescued_commits);
      ("commit_deadline_aborts", Core.Metrics.commit_deadline_aborts);
      ("read_widenings", Core.Metrics.read_widenings);
      ("stalls_detected", Core.Metrics.stalls_detected);
      ("latency samples", fun m -> Util.Stats.count (Core.Metrics.latency_stats m));
      ( "recovery samples",
        fun m -> Util.Stats.count (Core.Metrics.recovery_time_stats m) );
    ]
  in
  List.iter
    (fun (name, get) ->
      Alcotest.(check bool) (name ^ " bumped") true (get m > 0))
    accessors;
  Core.Metrics.reset m;
  List.iter
    (fun (name, get) -> Alcotest.(check int) (name ^ " reset") 0 (get m))
    accessors;
  Alcotest.(check (float 1e-9)) "p99 reset" 0. (Core.Metrics.latency_percentile m 99.)

let test_latency_percentiles () =
  let m = Core.Metrics.create () in
  for i = 1 to 100 do
    Core.Metrics.note_commit m ~latency:(float_of_int i)
  done;
  Alcotest.(check (float 1.)) "p50" 50. (Core.Metrics.latency_percentile m 50.);
  Alcotest.(check (float 1.)) "p95" 95. (Core.Metrics.latency_percentile m 95.);
  Alcotest.(check (float 1.)) "p99" 99. (Core.Metrics.latency_percentile m 99.)

(* {2 Report nan rendering (satellite: pct_change honesty)} *)

let test_report_nan_rendering () =
  let series =
    {
      Harness.Report.title = "nan test";
      x_label = "x";
      columns = [ "pct" ];
      rows = [ ("r", [ Harness.Report.pct_change ~baseline:0. 5. ]) ];
      notes = [];
    }
  in
  Alcotest.(check bool) "table renders n/a" true
    (contains (Harness.Report.render series) "n/a");
  Alcotest.(check bool) "csv renders nan" true
    (contains (Harness.Report.to_csv series) "nan")

let suite =
  [
    Alcotest.test_case "tracer: ring overflow" `Quick test_ring_overflow;
    Alcotest.test_case "tracer: null is inert" `Quick test_null_tracer_inert;
    Alcotest.test_case "trace: deterministic per seed" `Slow test_trace_determinism;
    Alcotest.test_case "trace: no perturbation" `Slow test_tracing_does_not_perturb;
    Alcotest.test_case "export: txn history" `Slow test_txn_history;
    Alcotest.test_case "checker: clean commit" `Quick test_checker_clean_commit;
    Alcotest.test_case "checker: dissenting vote" `Quick test_checker_commit_dissent;
    Alcotest.test_case "checker: invalid quorum" `Quick test_checker_commit_invalid_quorum;
    Alcotest.test_case "checker: pairwise fallback" `Quick
      test_checker_commit_pairwise_fallback;
    Alcotest.test_case "checker: lease overlap" `Quick test_checker_lease_overlap;
    Alcotest.test_case "checker: partial-abort scope" `Quick
      test_checker_partial_abort_scope;
    Alcotest.test_case "checker: rescue evidence" `Quick test_checker_rescue_evidence;
    Alcotest.test_case "checker: widen read" `Quick test_checker_widen_read;
    Alcotest.test_case "checker: healthy real trace" `Slow test_checker_on_real_trace;
    Alcotest.test_case "telemetry: windowed rates" `Quick test_telemetry_rates;
    Alcotest.test_case "telemetry: reset window flagged" `Quick
      test_telemetry_reset_window;
    Alcotest.test_case "telemetry: first sample seeds" `Quick
      test_telemetry_first_sample_seeds;
    Alcotest.test_case "telemetry: experiment integration" `Slow
      test_telemetry_via_experiment;
    Alcotest.test_case "metrics: exhaustive reset" `Quick test_metrics_reset_exhaustive;
    Alcotest.test_case "metrics: latency percentiles" `Quick test_latency_percentiles;
    Alcotest.test_case "report: nan rendered honestly" `Quick test_report_nan_rendering;
  ]
