(* Fault-injection acceptance tests: crash-recovery with state transfer,
   partitions, and safety (no lost updates, 1-copy serializability) under an
   imperfect detector and message loss. *)

open Core

let increments cluster ~oid ~nodes ~per_node ~on_commit =
  let rec client node remaining =
    if remaining > 0 then
      Cluster.submit cluster ~node (fun () -> Benchmarks.Counter.increment oid)
        ~on_done:(fun outcome ->
          match outcome with
          | Executor.Committed _ ->
            on_commit node;
            client node (remaining - 1)
          | Executor.Failed msg -> Alcotest.failf "client on %d failed: %s" node msg)
  in
  List.iter (fun node -> client node per_node) nodes

let expect_counter cluster ~node ~oid expected =
  match Cluster.run_program cluster ~node (fun () -> Txn.read oid) with
  | Executor.Committed (Store.Value.Int n) ->
    Alcotest.(check int) (Printf.sprintf "counter read from node %d" node) expected n
  | Executor.Committed v -> Alcotest.failf "unexpected value %s" (Store.Value.to_string v)
  | Executor.Failed msg -> Alcotest.failf "read from node %d failed: %s" node msg

let expect_consistent cluster =
  match Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "oracle: %s" msg

(* Crash a replica mid-workload, restart it after the workload drains, and
   verify the catch-up protocol: state transfer from a read quorum, quorum
   re-admission, and the recovered node serving reads of the synced state. *)
let test_crash_recover_state_sync () =
  let cluster = Cluster.create ~nodes:13 ~seed:41 (Config.default Config.Closed) in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  Cluster.fail_node_at cluster ~at:300. ~node:11;
  (* Recovery well after the 40 increments finish, so the synced copy must
     reflect every one of them. *)
  Cluster.recover_node_at cluster ~at:60_000. ~node:11;
  increments cluster ~oid ~nodes:[ 4; 5; 6; 7 ] ~per_node:10 ~on_commit:(fun _ -> ());
  Cluster.drain cluster;
  let metrics = Cluster.metrics cluster in
  Alcotest.(check int) "one recovery completed" 1 (Metrics.recoveries metrics);
  Alcotest.(check bool) "at least one sync round" true (Metrics.syncs metrics >= 1);
  Alcotest.(check bool) "recovery time measured" true
    (Util.Stats.mean (Metrics.recovery_time_stats metrics) > 0.);
  (* The recovered replica caught up to the freshest copy (node 0 — the
     tree root — is in every write quorum, so it is always current). *)
  let fresh = Store.Replica.get (Cluster.store_of cluster ~node:0) oid in
  let synced = Store.Replica.get (Cluster.store_of cluster ~node:11) oid in
  Alcotest.(check int) "synced version" fresh.Store.Replica.version
    synced.Store.Replica.version;
  Alcotest.(check bool) "synced value" true
    (synced.Store.Replica.value = Store.Value.Int 40);
  (* Fully re-admitted: alive, not suspected, and able to serve. *)
  Alcotest.(check bool) "network alive" true
    (List.mem 11 (Sim.Network.alive_nodes (Cluster.network cluster)));
  Alcotest.(check bool) "suspicion cleared" false
    (Sim.Failure.is_suspected (Cluster.failure cluster) 11);
  expect_counter cluster ~node:11 ~oid 40;
  expect_consistent cluster

(* While a minority {11,12} is partitioned off, the majority side keeps
   committing and the minority side commits nothing (the tree root, a member
   of every write quorum, is on the majority side).  After heal everyone
   finishes and no update is lost. *)
let test_partition_minority_stalls () =
  let cluster = Cluster.create ~nodes:13 ~seed:42 (Config.default Config.Closed) in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  let majority = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  let events =
    [ Harness.Scenario.Partition { groups = [ majority; [ 11; 12 ] ]; at = 1.; duration = 1500. } ]
  in
  let tracker = Harness.Scenario.install cluster events in
  let majority_commits = ref 0 and minority_commits = ref 0 in
  increments cluster ~oid ~nodes:[ 4; 5; 6 ] ~per_node:10 ~on_commit:(fun _ ->
      incr majority_commits);
  increments cluster ~oid ~nodes:[ 11 ] ~per_node:3 ~on_commit:(fun _ ->
      incr minority_commits);
  (* Sample just before the heal at t = 1501. *)
  Cluster.run_for cluster 1400.;
  Alcotest.(check int) "minority made no progress" 0 !minority_commits;
  Alcotest.(check bool) "majority kept committing" true (!majority_commits > 0);
  Cluster.drain cluster;
  Alcotest.(check int) "minority finished after heal" 3 !minority_commits;
  Alcotest.(check int) "majority finished" 30 !majority_commits;
  expect_counter cluster ~node:11 ~oid 33;
  let report = Harness.Scenario.report tracker in
  Alcotest.(check bool) "degraded window spans the partition" true
    (report.Harness.Scenario.degraded_time >= 1500.);
  Alcotest.(check int) "both cut-off nodes were suspected" 2
    report.Harness.Scenario.false_suspicions;
  Alcotest.(check bool) "boundary drops counted" true
    (report.Harness.Scenario.dropped > 0);
  expect_consistent cluster

(* Safety net: a wrongly suspected (perfectly live) node plus 5% global
   message loss must not cost a single update or break one-copy
   serializability, on every seed tried. *)
let test_false_suspicion_and_loss_safe () =
  List.iter
    (fun seed ->
      let cluster = Cluster.create ~nodes:13 ~seed (Config.default Config.Closed) in
      let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
      let events =
        [
          Harness.Scenario.Drop { p = 0.05; at = 0.; duration = None };
          Harness.Scenario.Suspect { node = 3; at = 400.; duration = 600. };
        ]
      in
      let tracker = Harness.Scenario.install cluster events in
      increments cluster ~oid ~nodes:[ 5; 6; 7; 8 ] ~per_node:8 ~on_commit:(fun _ -> ());
      Cluster.drain cluster;
      expect_counter cluster ~node:3 ~oid 32;
      let report = Harness.Scenario.report tracker in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: false suspicion recorded" seed)
        1 report.Harness.Scenario.false_suspicions;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: loss actually happened" seed)
        true
        (report.Harness.Scenario.dropped > 0);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: suspicion cleared" seed)
        false
        (Sim.Failure.is_suspected (Cluster.failure cluster) 3);
      expect_consistent cluster)
    [ 21; 22; 23 ]

(* {2 Scenario DSL parsing} *)

let parse_ok spec =
  match Harness.Scenario.parse spec with
  | Ok events -> events
  | Error msg -> Alcotest.failf "parse %S failed: %s" spec msg

let test_scenario_parse () =
  (match parse_ok "crash 11 @500; recover 11 @2500;" with
   | [ Harness.Scenario.Crash { node = 11; at = 500. };
       Harness.Scenario.Recover { node = 11; at = 2500. } ] ->
     ()
   | events -> Alcotest.failf "unexpected events (%d)" (List.length events));
  (match parse_ok "partition 0,1,2|11,12 @100 for 50" with
   | [ Harness.Scenario.Partition { groups = [ [ 0; 1; 2 ]; [ 11; 12 ] ]; at = 100.; duration = 50. } ]
     -> ()
   | _ -> Alcotest.fail "partition parse");
  (match parse_ok "drop 0.05 @0" with
   | [ Harness.Scenario.Drop { p = 0.05; at = 0.; duration = None } ] -> ()
   | _ -> Alcotest.fail "drop parse");
  (match parse_ok "spike 0.2 8 @10 for 200" with
   | [ Harness.Scenario.Spike { p = 0.2; factor = 8.; at = 10.; duration = Some 200. } ] -> ()
   | _ -> Alcotest.fail "spike parse");
  (match parse_ok "flaky 0-2 0.5 @10 for 20; dup 0.1 @5" with
   | [ Harness.Scenario.Flaky { a = 0; b = 2; p = 0.5; at = 10.; duration = Some 20. };
       Harness.Scenario.Duplicate { p = 0.1; at = 5.; duration = None } ] ->
     ()
   | _ -> Alcotest.fail "flaky/dup parse");
  (match parse_ok "suspect 4 @100 for 300" with
   | [ Harness.Scenario.Suspect { node = 4; at = 100.; duration = 300. } ] -> ()
   | _ -> Alcotest.fail "suspect parse")

let test_scenario_parse_errors () =
  let expect_error spec =
    match Harness.Scenario.parse spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %S to be rejected" spec
  in
  expect_error "crash 1"; (* missing @time *)
  expect_error "drop 1.5 @0"; (* probability out of range *)
  expect_error "suspect 1 @5"; (* missing mandatory duration *)
  expect_error "crash 1 @5 for 10"; (* crash takes no duration *)
  expect_error "explode 3 @1"; (* unknown verb *)
  expect_error "flaky 0+2 0.5 @1"; (* malformed link *)
  expect_error "partition | @1 for 5" (* empty group *)

let test_scenario_crashed_nodes () =
  let events = parse_ok "crash 5 @1; crash 2 @2; crash 5 @9; recover 5 @20; drop 0.1 @0" in
  Alcotest.(check (list int)) "sorted, deduplicated" [ 2; 5 ]
    (Harness.Scenario.crashed_nodes events)

(* {2 Scenario validation} *)

let test_scenario_validation () =
  let expect_invalid ~why events =
    match Harness.Scenario.validate ~nodes:9 events with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "expected validation to reject: %s" why
  in
  let expect_valid events =
    match Harness.Scenario.validate ~nodes:9 events with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "expected validation to accept, got: %s" msg
  in
  expect_valid
    [
      Harness.Scenario.Crash { node = 3; at = 10. };
      Harness.Scenario.Recover { node = 3; at = 50. };
      Harness.Scenario.Crash { node = 3; at = 90. };
      Harness.Scenario.Partition { groups = [ [ 0; 1 ]; [ 2; 3 ] ]; at = 5.; duration = 10. };
    ];
  expect_invalid ~why:"node id out of range"
    [ Harness.Scenario.Crash { node = 9; at = 1. } ];
  expect_invalid ~why:"negative node id"
    [ Harness.Scenario.Suspect { node = -1; at = 1.; duration = 5. } ];
  expect_invalid ~why:"double crash"
    [
      Harness.Scenario.Crash { node = 2; at = 1. };
      Harness.Scenario.Crash { node = 2; at = 5. };
    ];
  expect_invalid ~why:"recover without crash"
    [ Harness.Scenario.Recover { node = 2; at = 5. } ];
  expect_invalid ~why:"partition group member out of range"
    [ Harness.Scenario.Partition { groups = [ [ 0; 42 ]; [ 1 ] ]; at = 1.; duration = 5. } ];
  expect_invalid ~why:"flaky endpoint out of range"
    [ Harness.Scenario.Flaky { a = 0; b = 12; p = 0.5; at = 1.; duration = None } ];
  (* [install] runs the same checks and raises. *)
  let cluster = Cluster.create ~nodes:9 ~seed:77 (Config.default Config.Closed) in
  (try
     ignore
       (Harness.Scenario.install cluster
          [ Harness.Scenario.Crash { node = 12; at = 1. } ]);
     Alcotest.fail "install accepted an out-of-range node"
   with Invalid_argument _ -> ())

(* {2 Lease termination} *)

let step_until cluster ~what p =
  let engine = Cluster.engine cluster in
  let rec go () =
    if p () then ()
    else if Sim.Engine.step engine then go ()
    else Alcotest.failf "engine drained before %s" what
  in
  go ()

(* The tentpole scenario: a coordinator crashes after its write-quorum
   replicas granted locks (votes collected) but before it could decide —
   pre-lease, those locks would deadlock the objects forever.  The leases
   must expire, the status protocol must find no commit evidence, and the
   locks must fall under presumed abort within the termination pipeline's
   horizon, after which other transactions write the same object again. *)
let test_coordinator_crash_presumed_abort () =
  let config = Config.default Config.Closed in
  let cluster = Cluster.create ~nodes:9 ~seed:61 config in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  let outcome_delivered = ref false in
  Cluster.submit cluster ~node:4 (fun () -> Benchmarks.Counter.increment oid)
    ~on_done:(fun _ -> outcome_delivered := true);
  (* Run to the instant the first replica grants a write lock: the
     coordinator has sent its commit requests and is collecting votes. *)
  step_until cluster ~what:"a lease was granted" (fun () ->
      Cluster.held_leases cluster <> []);
  let t_kill = Cluster.now cluster in
  Cluster.fail_node_at cluster ~at:t_kill ~node:4;
  step_until cluster ~what:"the leases fell" (fun () ->
      Cluster.held_leases cluster = []);
  let t_clear = Cluster.now cluster in
  let horizon =
    config.Config.lease_duration +. config.Config.status_grace
    +. (float_of_int config.Config.status_attempts *. config.Config.request_timeout)
    +. 500.
  in
  Alcotest.(check bool)
    (Printf.sprintf "locks released within the termination horizon (%.0f <= %.0f)"
       (t_clear -. t_kill) horizon)
    true
    (t_clear -. t_kill <= horizon);
  Cluster.drain cluster;
  let metrics = Cluster.metrics cluster in
  Alcotest.(check bool) "fail-stop: no outcome delivered" false !outcome_delivered;
  Alcotest.(check bool) "the dead coordinator left no live transaction" true
    (Cluster.in_flight cluster = []);
  Alcotest.(check bool) "lease expiry detected" true
    (Metrics.lease_expirations metrics >= 1);
  Alcotest.(check bool) "presumed abort (no rescue applies: nothing committed)" true
    (Metrics.presumed_aborts metrics >= 1);
  Alcotest.(check int) "nothing was rescued" 0 (Metrics.status_rescued_commits metrics);
  (* The object is writable again by everyone else. *)
  (match
     Cluster.run_program cluster ~node:5 (fun () -> Benchmarks.Counter.increment oid)
   with
  | Executor.Committed _ -> ()
  | Executor.Failed msg -> Alcotest.failf "post-crash increment failed: %s" msg);
  (* Let the increment's apply fan-out land before reading. *)
  Cluster.drain cluster;
  expect_counter cluster ~node:8 ~oid 1;
  expect_consistent cluster

(* The other half of termination: the coordinator DID decide commit (an
   Apply reached a status peer) and then died before this replica's copy
   arrived.  Presuming abort here would un-commit a decided transaction;
   the status exchange must instead rescue it — adopt the newer copy and
   release the lease. *)
let test_status_rescues_decided_commit () =
  let config = Config.default Config.Closed in
  let cluster = Cluster.create ~nodes:9 ~seed:62 config in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  let txn = Ids.fresh_txn (Cluster.ids cluster) in
  (* Stage the decided commit by hand over the write quorum {0,2,3,7,8}
     (root + the subtree majorities under children 2 and 3): replica 7
     granted the lock (vote collected), and the second-phase Apply reached
     every other member — node 0 in particular is in 7's status peer set —
     before the coordinator died, leaving 7's copy stale and locked. *)
  let holder = Cluster.server_of cluster ~node:7 in
  (match
     Server.handle holder ~src:3
       (Messages.Commit_req
          {
            txn;
            dataset = Messages.dataset_of_list [ { Messages.oid; version = 0; owner = 0 } ];
            locks = [ oid ];
            round = 1;
            peers = [];
          })
   with
  | Some (Messages.Vote { commit = true; _ }) -> ()
  | _ -> Alcotest.fail "replica 7 refused the vote");
  Alcotest.(check bool) "lease held at replica 7" true
    (Cluster.held_leases cluster <> []);
  List.iter
    (fun node ->
      ignore
        (Server.handle (Cluster.server_of cluster ~node) ~src:3
           (Messages.Apply
              {
                txn;
                writes = Messages.writes_of_list [ (oid, 1, Store.Value.Int 7) ];
                reads = [||];
              })))
    [ 0; 2; 3; 8 ];
  (* The oracle must know about the decided commit, as the coordinator
     would have reported it. *)
  (match Cluster.oracle cluster with
  | Some oracle ->
    Core.Oracle.note_commit oracle ~txn ~decision:(Cluster.now cluster)
      ~window_start:(Cluster.now cluster) ~reads:[ (oid, 0) ] ~writes:[ (oid, 1) ]
  | None -> ());
  Cluster.drain cluster;
  let metrics = Cluster.metrics cluster in
  Alcotest.(check bool) "commit rescued" true (Metrics.status_rescued_commits metrics >= 1);
  Alcotest.(check int) "not presumed aborted" 0 (Metrics.presumed_aborts metrics);
  Alcotest.(check bool) "all leases released" true (Cluster.held_leases cluster = []);
  let copy = Store.Replica.get (Cluster.store_of cluster ~node:7) oid in
  Alcotest.(check int) "replica 7 adopted the committed version" 1
    copy.Store.Replica.version;
  Alcotest.(check bool) "replica 7 adopted the committed value" true
    (copy.Store.Replica.value = Store.Value.Int 7);
  (match Cluster.run_program cluster ~node:8 (fun () -> Txn.read oid) with
  | Executor.Committed (Store.Value.Int 7) -> ()
  | Executor.Committed v -> Alcotest.failf "unexpected value %s" (Store.Value.to_string v)
  | Executor.Failed msg -> Alcotest.failf "post-rescue read failed: %s" msg);
  expect_consistent cluster

(* {2 Chaos harness} *)

let small_knobs =
  { Harness.Chaos.default_knobs with clients = 8; horizon = 3000.; max_crashes = 1 }

let test_chaos_deterministic () =
  let a = Harness.Chaos.run_one small_knobs ~seed:5 in
  let b = Harness.Chaos.run_one small_knobs ~seed:5 in
  Alcotest.(check string) "same schedule"
    (Harness.Chaos.render_schedule a.Harness.Chaos.events)
    (Harness.Chaos.render_schedule b.Harness.Chaos.events);
  Alcotest.(check int) "same commits" a.Harness.Chaos.commits b.Harness.Chaos.commits;
  Alcotest.(check int) "same aborts" a.Harness.Chaos.root_aborts b.Harness.Chaos.root_aborts;
  Alcotest.(check (float 0.)) "same quiescence time" a.Harness.Chaos.quiesced_at
    b.Harness.Chaos.quiesced_at

let test_chaos_small_batch () =
  let results = Harness.Chaos.run_many small_knobs ~seed:1 ~runs:3 in
  Alcotest.(check int) "three runs" 3 (List.length results);
  List.iter
    (fun r ->
      if not (Harness.Chaos.passed r) then
        Alcotest.failf "seed %d failed:@ %a" r.Harness.Chaos.seed
          (fun fmt -> Format.fprintf fmt "%a" Harness.Chaos.pp_result)
          r;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d made progress" r.Harness.Chaos.seed)
        true
        (r.Harness.Chaos.commits > 0))
    results

let suite =
  [
    Alcotest.test_case "crash, recover, state-sync, serve" `Quick
      test_crash_recover_state_sync;
    Alcotest.test_case "partitioned minority stalls" `Quick test_partition_minority_stalls;
    Alcotest.test_case "false suspicion + 5% loss safe" `Quick
      test_false_suspicion_and_loss_safe;
    Alcotest.test_case "scenario parse" `Quick test_scenario_parse;
    Alcotest.test_case "scenario parse errors" `Quick test_scenario_parse_errors;
    Alcotest.test_case "scenario crashed nodes" `Quick test_scenario_crashed_nodes;
    Alcotest.test_case "scenario validation" `Quick test_scenario_validation;
    Alcotest.test_case "coordinator crash mid-2PC: presumed abort" `Quick
      test_coordinator_crash_presumed_abort;
    Alcotest.test_case "decided commit rescued, not presumed aborted" `Quick
      test_status_rescues_decided_commit;
    Alcotest.test_case "chaos runs are deterministic per seed" `Quick
      test_chaos_deterministic;
    Alcotest.test_case "chaos small batch passes" `Quick test_chaos_small_batch;
  ]
