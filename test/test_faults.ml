(* Fault-injection acceptance tests: crash-recovery with state transfer,
   partitions, and safety (no lost updates, 1-copy serializability) under an
   imperfect detector and message loss. *)

open Core

let increments cluster ~oid ~nodes ~per_node ~on_commit =
  let rec client node remaining =
    if remaining > 0 then
      Cluster.submit cluster ~node (fun () -> Benchmarks.Counter.increment oid)
        ~on_done:(fun outcome ->
          match outcome with
          | Executor.Committed _ ->
            on_commit node;
            client node (remaining - 1)
          | Executor.Failed msg -> Alcotest.failf "client on %d failed: %s" node msg)
  in
  List.iter (fun node -> client node per_node) nodes

let expect_counter cluster ~node ~oid expected =
  match Cluster.run_program cluster ~node (fun () -> Txn.read oid) with
  | Executor.Committed (Store.Value.Int n) ->
    Alcotest.(check int) (Printf.sprintf "counter read from node %d" node) expected n
  | Executor.Committed v -> Alcotest.failf "unexpected value %s" (Store.Value.to_string v)
  | Executor.Failed msg -> Alcotest.failf "read from node %d failed: %s" node msg

let expect_consistent cluster =
  match Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "oracle: %s" msg

(* Crash a replica mid-workload, restart it after the workload drains, and
   verify the catch-up protocol: state transfer from a read quorum, quorum
   re-admission, and the recovered node serving reads of the synced state. *)
let test_crash_recover_state_sync () =
  let cluster = Cluster.create ~nodes:13 ~seed:41 (Config.default Config.Closed) in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  Cluster.fail_node_at cluster ~at:300. ~node:11;
  (* Recovery well after the 40 increments finish, so the synced copy must
     reflect every one of them. *)
  Cluster.recover_node_at cluster ~at:60_000. ~node:11;
  increments cluster ~oid ~nodes:[ 4; 5; 6; 7 ] ~per_node:10 ~on_commit:(fun _ -> ());
  Cluster.drain cluster;
  let metrics = Cluster.metrics cluster in
  Alcotest.(check int) "one recovery completed" 1 (Metrics.recoveries metrics);
  Alcotest.(check bool) "at least one sync round" true (Metrics.syncs metrics >= 1);
  Alcotest.(check bool) "recovery time measured" true
    (Util.Stats.mean (Metrics.recovery_time_stats metrics) > 0.);
  (* The recovered replica caught up to the freshest copy (node 0 — the
     tree root — is in every write quorum, so it is always current). *)
  let fresh = Store.Replica.get (Cluster.store_of cluster ~node:0) oid in
  let synced = Store.Replica.get (Cluster.store_of cluster ~node:11) oid in
  Alcotest.(check int) "synced version" fresh.Store.Replica.version
    synced.Store.Replica.version;
  Alcotest.(check bool) "synced value" true
    (synced.Store.Replica.value = Store.Value.Int 40);
  (* Fully re-admitted: alive, not suspected, and able to serve. *)
  Alcotest.(check bool) "network alive" true
    (List.mem 11 (Sim.Network.alive_nodes (Cluster.network cluster)));
  Alcotest.(check bool) "suspicion cleared" false
    (Sim.Failure.is_suspected (Cluster.failure cluster) 11);
  expect_counter cluster ~node:11 ~oid 40;
  expect_consistent cluster

(* While a minority {11,12} is partitioned off, the majority side keeps
   committing and the minority side commits nothing (the tree root, a member
   of every write quorum, is on the majority side).  After heal everyone
   finishes and no update is lost. *)
let test_partition_minority_stalls () =
  let cluster = Cluster.create ~nodes:13 ~seed:42 (Config.default Config.Closed) in
  let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
  let majority = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  let events =
    [ Harness.Scenario.Partition { groups = [ majority; [ 11; 12 ] ]; at = 1.; duration = 1500. } ]
  in
  let tracker = Harness.Scenario.install cluster events in
  let majority_commits = ref 0 and minority_commits = ref 0 in
  increments cluster ~oid ~nodes:[ 4; 5; 6 ] ~per_node:10 ~on_commit:(fun _ ->
      incr majority_commits);
  increments cluster ~oid ~nodes:[ 11 ] ~per_node:3 ~on_commit:(fun _ ->
      incr minority_commits);
  (* Sample just before the heal at t = 1501. *)
  Cluster.run_for cluster 1400.;
  Alcotest.(check int) "minority made no progress" 0 !minority_commits;
  Alcotest.(check bool) "majority kept committing" true (!majority_commits > 0);
  Cluster.drain cluster;
  Alcotest.(check int) "minority finished after heal" 3 !minority_commits;
  Alcotest.(check int) "majority finished" 30 !majority_commits;
  expect_counter cluster ~node:11 ~oid 33;
  let report = Harness.Scenario.report tracker in
  Alcotest.(check bool) "degraded window spans the partition" true
    (report.Harness.Scenario.degraded_time >= 1500.);
  Alcotest.(check int) "both cut-off nodes were suspected" 2
    report.Harness.Scenario.false_suspicions;
  Alcotest.(check bool) "boundary drops counted" true
    (report.Harness.Scenario.dropped > 0);
  expect_consistent cluster

(* Safety net: a wrongly suspected (perfectly live) node plus 5% global
   message loss must not cost a single update or break one-copy
   serializability, on every seed tried. *)
let test_false_suspicion_and_loss_safe () =
  List.iter
    (fun seed ->
      let cluster = Cluster.create ~nodes:13 ~seed (Config.default Config.Closed) in
      let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
      let events =
        [
          Harness.Scenario.Drop { p = 0.05; at = 0.; duration = None };
          Harness.Scenario.Suspect { node = 3; at = 400.; duration = 600. };
        ]
      in
      let tracker = Harness.Scenario.install cluster events in
      increments cluster ~oid ~nodes:[ 5; 6; 7; 8 ] ~per_node:8 ~on_commit:(fun _ -> ());
      Cluster.drain cluster;
      expect_counter cluster ~node:3 ~oid 32;
      let report = Harness.Scenario.report tracker in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: false suspicion recorded" seed)
        1 report.Harness.Scenario.false_suspicions;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: loss actually happened" seed)
        true
        (report.Harness.Scenario.dropped > 0);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: suspicion cleared" seed)
        false
        (Sim.Failure.is_suspected (Cluster.failure cluster) 3);
      expect_consistent cluster)
    [ 21; 22; 23 ]

(* {2 Scenario DSL parsing} *)

let parse_ok spec =
  match Harness.Scenario.parse spec with
  | Ok events -> events
  | Error msg -> Alcotest.failf "parse %S failed: %s" spec msg

let test_scenario_parse () =
  (match parse_ok "crash 11 @500; recover 11 @2500;" with
   | [ Harness.Scenario.Crash { node = 11; at = 500. };
       Harness.Scenario.Recover { node = 11; at = 2500. } ] ->
     ()
   | events -> Alcotest.failf "unexpected events (%d)" (List.length events));
  (match parse_ok "partition 0,1,2|11,12 @100 for 50" with
   | [ Harness.Scenario.Partition { groups = [ [ 0; 1; 2 ]; [ 11; 12 ] ]; at = 100.; duration = 50. } ]
     -> ()
   | _ -> Alcotest.fail "partition parse");
  (match parse_ok "drop 0.05 @0" with
   | [ Harness.Scenario.Drop { p = 0.05; at = 0.; duration = None } ] -> ()
   | _ -> Alcotest.fail "drop parse");
  (match parse_ok "spike 0.2 8 @10 for 200" with
   | [ Harness.Scenario.Spike { p = 0.2; factor = 8.; at = 10.; duration = Some 200. } ] -> ()
   | _ -> Alcotest.fail "spike parse");
  (match parse_ok "flaky 0-2 0.5 @10 for 20; dup 0.1 @5" with
   | [ Harness.Scenario.Flaky { a = 0; b = 2; p = 0.5; at = 10.; duration = Some 20. };
       Harness.Scenario.Duplicate { p = 0.1; at = 5.; duration = None } ] ->
     ()
   | _ -> Alcotest.fail "flaky/dup parse");
  (match parse_ok "suspect 4 @100 for 300" with
   | [ Harness.Scenario.Suspect { node = 4; at = 100.; duration = 300. } ] -> ()
   | _ -> Alcotest.fail "suspect parse")

let test_scenario_parse_errors () =
  let expect_error spec =
    match Harness.Scenario.parse spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %S to be rejected" spec
  in
  expect_error "crash 1"; (* missing @time *)
  expect_error "drop 1.5 @0"; (* probability out of range *)
  expect_error "suspect 1 @5"; (* missing mandatory duration *)
  expect_error "crash 1 @5 for 10"; (* crash takes no duration *)
  expect_error "explode 3 @1"; (* unknown verb *)
  expect_error "flaky 0+2 0.5 @1"; (* malformed link *)
  expect_error "partition | @1 for 5" (* empty group *)

let test_scenario_crashed_nodes () =
  let events = parse_ok "crash 5 @1; crash 2 @2; crash 5 @9; recover 5 @20; drop 0.1 @0" in
  Alcotest.(check (list int)) "sorted, deduplicated" [ 2; 5 ]
    (Harness.Scenario.crashed_nodes events)

let suite =
  [
    Alcotest.test_case "crash, recover, state-sync, serve" `Quick
      test_crash_recover_state_sync;
    Alcotest.test_case "partitioned minority stalls" `Quick test_partition_minority_stalls;
    Alcotest.test_case "false suspicion + 5% loss safe" `Quick
      test_false_suspicion_and_loss_safe;
    Alcotest.test_case "scenario parse" `Quick test_scenario_parse;
    Alcotest.test_case "scenario parse errors" `Quick test_scenario_parse_errors;
    Alcotest.test_case "scenario crashed nodes" `Quick test_scenario_crashed_nodes;
  ]
