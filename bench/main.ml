(* Benchmark harness.

   Entry points:

   1. Default: regenerate every table and figure of the paper's evaluation
      (quick scale; see `qr-dtm all --scale full` for paper-like runs), plus
      the ablation sweeps DESIGN.md calls out, plus Bechamel
      micro-benchmarks of the core operations.
   2. `wall`: wall-clock benchmark of the figure-regeneration suite at
      --jobs 1 vs --jobs N, verifying byte-identical output and emitting
      BENCH_harness.json (see EXPERIMENTS.md for the format).
   3. `alloc`: GC-counter benchmark of the simulator hot path — minor and
      major words allocated per committed transaction, written to the same
      JSON (the CI gate compares both throughput and allocation rate).
   4. `openloop`: the open-loop (Poisson-arrival) driver at an offered load
      below and far above the cluster's capacity, emitting
      BENCH_openloop.json and sanity-gating the saturation signature:
      under load, achieved tracks offered; past saturation, queueing delay
      dominates while service latency stays bounded.

   Run with: dune exec bench/main.exe -- [wall|alloc|openloop] [--jobs N]
                                          [--scale quick|full] [--out FILE] *)

open Core

(* --- command line ------------------------------------------------------ *)

type cli = {
  mutable wall : bool;
  mutable alloc : bool;
  mutable openloop : bool;
  mutable jobs : int;
  mutable scale_name : string;
  mutable out : string;
  mutable baseline : string option;
  mutable max_regression : float;
  mutable max_traced_overhead : float;
  mutable max_alloc_regression : float;
  mutable min_batch_speedup : float;
}

let cli =
  {
    wall = false;
    alloc = false;
    openloop = false;
    jobs = Harness.Pool.default_jobs ();
    scale_name = "quick";
    out = "BENCH_harness.json";
    baseline = None;
    max_regression = 2.0;
    max_traced_overhead = 15.0;
    max_alloc_regression = 20.0;
    min_batch_speedup = 3.0;
  }

let usage () =
  prerr_endline
    "usage: bench/main.exe [wall|alloc|openloop] [--jobs N] [--scale quick|full] [--out FILE]\n\
    \                      [--baseline FILE] [--max-regression PCT]\n\
    \                      [--max-traced-overhead PCT] [--max-alloc-regression PCT]\n\
    \                      [--min-batch-speedup X]";
  exit 2

let () =
  let rec parse = function
    | [] -> ()
    | "wall" :: rest -> cli.wall <- true; parse rest
    | "alloc" :: rest -> cli.alloc <- true; parse rest
    | "openloop" :: rest -> cli.openloop <- true; parse rest
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with Some j when j >= 1 -> cli.jobs <- j | _ -> usage ());
      parse rest
    | "--scale" :: s :: rest ->
      if s = "quick" || s = "full" then cli.scale_name <- s else usage ();
      parse rest
    | "--out" :: file :: rest -> cli.out <- file; parse rest
    | "--baseline" :: file :: rest -> cli.baseline <- Some file; parse rest
    | "--max-regression" :: p :: rest ->
      (match float_of_string_opt p with Some v when v > 0. -> cli.max_regression <- v | _ -> usage ());
      parse rest
    | "--max-traced-overhead" :: p :: rest ->
      (match float_of_string_opt p with
      | Some v when v > 0. -> cli.max_traced_overhead <- v
      | _ -> usage ());
      parse rest
    | "--max-alloc-regression" :: p :: rest ->
      (match float_of_string_opt p with
      | Some v when v > 0. -> cli.max_alloc_regression <- v
      | _ -> usage ());
      parse rest
    | "--min-batch-speedup" :: p :: rest ->
      (match float_of_string_opt p with
      | Some v when v > 0. -> cli.min_batch_speedup <- v
      | _ -> usage ());
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv))

(* Satellite of the zero-allocation work: asking for more workers than the
   machine has cores used to *slow the bench down* (domains time-slicing one
   core) and then fail the speedup sanity check.  Record what was asked and
   what was granted; skip the parallel pass entirely on a single core. *)
let jobs_requested = cli.jobs
let jobs_effective = Stdlib.max 1 (Stdlib.min cli.jobs (Harness.Pool.default_jobs ()))

let scale =
  if cli.scale_name = "full" then Harness.Figures.full else Harness.Figures.quick

let print_series series = print_string (Harness.Report.render series)

let figures () =
  print_endline "==================================================================";
  print_endline "Paper evaluation regeneration (quick scale)";
  print_endline "==================================================================";
  List.iter
    (fun benchmark ->
      print_series (Harness.Figures.fig5 ~scale ~benchmark ());
      print_series (Harness.Figures.fig6 ~scale ~benchmark ());
      print_series (Harness.Figures.fig7 ~scale ~benchmark ()))
    Benchmarks.Registry.paper_suite;
  print_series (Harness.Figures.table8 ~scale ());
  List.iter print_series (Harness.Figures.fig9 ~scale ());
  print_series (Harness.Figures.fig10 ~scale ());
  print_series (Harness.Figures.summary ~scale ())

(* --- Ablations --------------------------------------------------------- *)

let run_mode ?(config_of = Config.default) mode =
  Harness.Experiment.run ~seed:7 ~clients:scale.clients ~warmup:scale.warmup
    ~duration:scale.duration ~config:(config_of mode)
    ~benchmark:Benchmarks.Bank.benchmark
    ~params:{ Benchmarks.Workload.default_params with objects = 96; calls = 3; read_ratio = 0.5; key_skew = 0.5 }
    ()

let ablation_rqv_for_flat () =
  let base = run_mode Config.Flat in
  let with_rqv = run_mode ~config_of:(fun m -> Config.make ~rqv_for_flat:true m) Config.Flat in
  print_series
    {
      Harness.Report.title = "Ablation: incremental validation (Rqv) for flat transactions";
      x_label = "variant";
      columns = [ "throughput"; "messages"; "root aborts" ];
      rows =
        [
          ( "flat (paper QR)",
            [ base.throughput; Float.of_int base.messages; Float.of_int base.root_aborts ] );
          ( "flat + Rqv",
            [
              with_rqv.throughput;
              Float.of_int with_rqv.messages;
              Float.of_int with_rqv.root_aborts;
            ] );
        ];
      notes =
        [ "Rqv gives flat transactions early aborts and local read-only commits" ];
    }

let ablation_checkpoint_tuning () =
  let point ~threshold ~overhead =
    let result =
      run_mode
        ~config_of:(fun m ->
          Config.make ~checkpoint_threshold:threshold ~checkpoint_overhead:overhead m)
        Config.Checkpoint
    in
    [ result.Harness.Experiment.throughput; Float.of_int result.partial_aborts ]
  in
  print_series
    {
      Harness.Report.title =
        "Ablation: checkpoint granularity and creation cost (QR-CHK, bank)";
      x_label = "threshold/overhead";
      columns = [ "throughput"; "partial aborts" ];
      rows =
        [
          ("1 obj / 0.5 ms", point ~threshold:1 ~overhead:0.5);
          ("1 obj / 2 ms", point ~threshold:1 ~overhead:2.0);
          ("1 obj / 8 ms (JVM-like)", point ~threshold:1 ~overhead:8.0);
          ("2 objs / 2 ms", point ~threshold:2 ~overhead:2.0);
          ("4 objs / 2 ms", point ~threshold:4 ~overhead:2.0);
        ];
      notes =
        [
          "the paper's QR-CHK used fine-grained (per-object) checkpoints on a \
           continuation-patched JVM; higher creation costs push QR-CHK below flat";
        ];
    }

let ablation_read_level () =
  let point level =
    let result =
      Harness.Experiment.run ~seed:9 ~read_level:level ~clients:scale.clients
        ~warmup:scale.warmup ~duration:scale.duration
        ~config:(Config.default Config.Closed) ~benchmark:Benchmarks.Bank.benchmark
        ~params:
          { Benchmarks.Workload.default_params with objects = 96; calls = 3; read_ratio = 0.5; key_skew = 0.5 }
        ()
    in
    [ result.Harness.Experiment.throughput; Float.of_int result.messages ]
  in
  print_series
    {
      Harness.Report.title = "Ablation: read-quorum depth (tree level)";
      x_label = "read level";
      columns = [ "throughput"; "messages" ];
      rows = [ ("0 (root)", point 0); ("1 (paper)", point 1); ("2", point 2) ];
      notes = [ "deeper read quorums spread load but cost more messages per read" ];
    }

let ablation_commit_lock_retries () =
  let point retries =
    let result =
      run_mode ~config_of:(fun m -> Config.make ~commit_lock_retries:retries m) Config.Closed
    in
    [ result.Harness.Experiment.throughput; Float.of_int result.root_aborts ]
  in
  print_series
    {
      Harness.Report.title = "Ablation: commit retry on lock conflict (QR-CN, bank)";
      x_label = "lock retries";
      columns = [ "throughput"; "root aborts" ];
      rows = [ ("0 (paper)", point 0); ("1", point 1); ("3", point 3) ];
      notes = [ "a lock conflict often clears within one 2PC round trip" ];
    }

(* Extension: open nesting vs closed nesting on a transfer workload.  Open
   sub-transactions commit (and release their conflict window) immediately,
   at the price of an extra 2PC round per call and compensations on abort. *)
let ablation_open_nesting () =
  let accounts_of cluster =
    Array.init 48 (fun _ ->
        Cluster.alloc_object cluster
          ~init:(Store.Value.Int Benchmarks.Bank.initial_balance))
  in
  let run ~open_mode =
    let cluster = Cluster.create ~nodes:13 ~seed:41 (Config.default Config.Closed) in
    let accounts = accounts_of cluster in
    let rng = Util.Rng.create 17 in
    let gen_call r =
      let i = Util.Rng.int r 48 in
      let j = (i + 1 + Util.Rng.int r 47) mod 48 in
      let a = accounts.(i) and b = accounts.(j) in
      let amount = 1 + Util.Rng.int r 10 in
      if open_mode then
        Txn.open_nested
          ~body:(fun () -> Benchmarks.Bank.transfer ~from_:a ~to_:b ~amount)
          ~compensate:(fun _ -> Benchmarks.Bank.transfer ~from_:b ~to_:a ~amount)
      else Txn.nested (fun () -> Benchmarks.Bank.transfer ~from_:a ~to_:b ~amount)
    in
    let stop = ref false in
    let rec client node r =
      if not !stop then begin
        let calls = List.init 3 (fun _ -> gen_call r) in
        let program () = Benchmarks.Workload.seq calls in
        Cluster.submit cluster ~node program ~on_done:(fun _ -> client node r)
      end
    in
    for c = 0 to scale.clients - 1 do
      client (c mod 13) (Util.Rng.split rng)
    done;
    Cluster.run_for cluster scale.warmup;
    Cluster.reset_counters cluster;
    Cluster.run_for cluster scale.duration;
    let metrics = Cluster.metrics cluster in
    let commits = Metrics.commits metrics - Metrics.compensations metrics in
    let row =
      [
        Float.of_int commits /. (scale.duration /. 1000.);
        Float.of_int (Cluster.messages_sent cluster);
        Float.of_int (Metrics.root_aborts metrics);
        Float.of_int (Metrics.compensations metrics);
      ]
    in
    stop := true;
    Cluster.drain cluster;
    let total = Benchmarks.Bank.total_balance cluster ~accounts in
    if total <> 48 * Benchmarks.Bank.initial_balance then
      Printf.printf "WARNING: open-nesting ablation lost money (%d)\n" total;
    row
  in
  print_series
    {
      Harness.Report.title = "Extension: open nesting vs closed nesting (bank transfers)";
      x_label = "model";
      columns = [ "throughput"; "messages"; "root aborts"; "compensations" ];
      rows = [ ("closed", run ~open_mode:false); ("open", run ~open_mode:true) ];
      notes =
        [
          "open sub-transactions commit early (shorter conflict windows) but pay a 2PC \
           per call and compensations on parent aborts";
        ];
    }

let ablations () =
  print_endline "==================================================================";
  print_endline "Ablations (design choices called out in DESIGN.md)";
  print_endline "==================================================================";
  ablation_rqv_for_flat ();
  ablation_checkpoint_tuning ();
  ablation_read_level ();
  ablation_commit_lock_retries ();
  ablation_open_nesting ()

(* --- Bechamel micro-benchmarks ----------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let tree_quorum =
    let tq = Quorum.Tree_quorum.create ~nodes:40 () in
    Test.make ~name:"tree_quorum.read+write" (Staged.stage (fun () ->
        ignore (Quorum.Tree_quorum.read_quorum ~salt:3 tq);
        ignore (Quorum.Tree_quorum.write_quorum ~salt:3 tq)))
  in
  let replica_ops =
    let store = Store.Replica.create () in
    for oid = 0 to 255 do
      Store.Replica.ensure store ~oid ~init:(Store.Value.Int oid)
    done;
    let counter = ref 0 in
    Test.make ~name:"replica.lock+apply" (Staged.stage (fun () ->
        let oid = !counter land 255 in
        incr counter;
        ignore (Store.Replica.try_lock store ~oid ~txn:1);
        Store.Replica.apply store ~oid ~version:(!counter) ~value:(Store.Value.Int !counter)
          ~txn:1))
  in
  let rqv_validate =
    let store = Store.Replica.create () in
    for oid = 0 to 31 do
      Store.Replica.ensure store ~oid ~init:Store.Value.Unit
    done;
    let dataset =
      Messages.dataset_of_list
        (List.init 16 (fun oid -> { Messages.oid; version = 0; owner = oid land 3 }))
    in
    Test.make ~name:"rqv.validate(16 entries)" (Staged.stage (fun () ->
        ignore (Rqv.validate store ~txn:1 ~dataset)))
  in
  let rwset_ops =
    Test.make ~name:"rwset.add x16 + merge" (Staged.stage (fun () ->
        let set =
          List.fold_left
            (fun s oid ->
              Rwset.add s { Rwset.oid; version = 0; value = Store.Value.Int oid; owner = 0 })
            Rwset.empty
            (List.init 16 Fun.id)
        in
        ignore (Rwset.merge_into ~child:set ~parent:set)))
  in
  let heap_ops =
    let module H = Util.Heap.Make (Int) in
    Test.make ~name:"heap.add+pop x64" (Staged.stage (fun () ->
        let h = H.create () in
        for i = 63 downto 0 do
          H.add h i
        done;
        for _ = 0 to 63 do
          ignore (H.pop h)
        done))
  in
  let rng_ops =
    let rng = Util.Rng.create 5 in
    Test.make ~name:"rng.zipf" (Staged.stage (fun () -> ignore (Util.Rng.zipf rng ~n:256 ~skew:0.8)))
  in
  let txn_interpret =
    let cluster = Cluster.create ~nodes:13 ~seed:77 ~with_oracle:false (Config.default Config.Closed) in
    let oid = Cluster.alloc_object cluster ~init:(Store.Value.Int 0) in
    Test.make ~name:"cluster.txn end-to-end" (Staged.stage (fun () ->
        ignore (Cluster.run_program cluster ~node:3 (fun () -> Txn.read oid))))
  in
  [ tree_quorum; replica_ops; rqv_validate; rwset_ops; heap_ops; rng_ops; txn_interpret ]

let micro () =
  let open Bechamel in
  print_endline "==================================================================";
  print_endline "Bechamel micro-benchmarks (ns per run, OLS fit)";
  print_endline "==================================================================";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> Printf.sprintf "%12.1f ns/run" e
            | Some _ | None -> "(no estimate)"
          in
          Printf.printf "%-32s %s\n%!" name estimate)
        analysis)
    (micro_tests ())

(* --- wall-clock bench (`wall` mode) ------------------------------------ *)

(* The figure-regeneration suite rendered to one string: the unit of work
   the wall bench times, and the artifact the jobs-1-vs-N identity check
   compares byte for byte. *)
let render_everything () =
  let series = Harness.Figures.everything ~scale () in
  String.concat "" (List.map Harness.Report.render series)

let timed f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (Unix.gettimeofday () -. t0, result)

(* Raw simulator event throughput: drive a closed-loop bank workload for a
   fixed stretch of virtual time and divide dispatched events by wall
   seconds.  This isolates the per-event constant factor from the
   parallel-harness speedup.  [tracer] lets the wall bench measure the cost
   of lifecycle tracing (enabled vs the default null tracer); the commit
   latency percentiles of the workload and the GC allocation counters over
   the measured stretch ride along for BENCH_harness.json. *)
type eps_stats = {
  eps : float;
  events : int;
  commits : int;
  minor_words_per_commit : float;
  major_words_per_commit : float;
  promoted_words_per_commit : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let events_per_second ?(tracer = Obs.Tracer.null) () =
  let cluster =
    Cluster.create ~nodes:13 ~seed:11 ~with_oracle:false ~tracer
      (Config.default Config.Closed)
  in
  let accounts =
    Array.init 64 (fun _ ->
        Cluster.alloc_object cluster
          ~init:(Store.Value.Int Benchmarks.Bank.initial_balance))
  in
  let rng = Util.Rng.create 23 in
  let stop = ref false in
  let rec client node r =
    if not !stop then begin
      let i = Util.Rng.int r 64 in
      let j = (i + 1 + Util.Rng.int r 63) mod 64 in
      let program () =
        Benchmarks.Bank.transfer ~from_:accounts.(i) ~to_:accounts.(j) ~amount:1
      in
      Cluster.submit cluster ~node program ~on_done:(fun _ -> client node r)
    end
  in
  for c = 0 to 25 do
    client (c mod 13) (Util.Rng.split rng)
  done;
  (* GC deltas bracket exactly the measured stretch (setup allocations and
     the drain are excluded), so words/commit reflects steady state. *)
  let stat0 = Gc.quick_stat () in
  let minor0 = Gc.minor_words () in
  let wall, () = timed (fun () -> Cluster.run_for cluster 10_000.) in
  let minor1 = Gc.minor_words () in
  let stat1 = Gc.quick_stat () in
  stop := true;
  Cluster.drain cluster;
  let events = Sim.Engine.events_processed (Cluster.engine cluster) in
  let metrics = Cluster.metrics cluster in
  let commits = Metrics.commits metrics in
  let per_commit w = w /. Float.of_int (Stdlib.max 1 commits) in
  {
    eps = Float.of_int events /. wall;
    events;
    commits;
    minor_words_per_commit = per_commit (minor1 -. minor0);
    major_words_per_commit = per_commit (stat1.Gc.major_words -. stat0.Gc.major_words);
    promoted_words_per_commit =
      per_commit (stat1.Gc.promoted_words -. stat0.Gc.promoted_words);
    p50 = Metrics.latency_percentile metrics 50.;
    p95 = Metrics.latency_percentile metrics 95.;
    p99 = Metrics.latency_percentile metrics 99.;
  }

(* --- batch-commit vs sequential commit throughput ----------------------- *)

(* Write-heavy contended bank (few hot accounts, 2 transfers per txn):
   the regime PROTOCOL.md §9's commit queues target.  Sequentially, hot
   transactions serialize through stale-read aborts — roughly one commit
   per quorum round trip per hot object.  Batched, conflicting updates
   chain through the coordinator's write images and an entire chain
   commits in one round. *)
type batch_stats = {
  seq_cps : float;
  batch_cps : float;
  batch_speedup : float;
  occupancy_p50 : float;
  occupancy_p95 : float;
  spec_aborts : int;
}

let measure_batch () =
  let point ~batch_commit =
    Harness.Experiment.run ~nodes:9 ~clients:24 ~seed:131 ~warmup:500.
      ~duration:3_000. ~batch_commit
      ~config:(Config.default Config.Flat)
      ~benchmark:Benchmarks.Bank.benchmark
      ~params:
        { Benchmarks.Workload.default_params with objects = 8; calls = 2; read_ratio = 0.1; key_skew = 0.5 }
      ()
  in
  let guard label (r : Harness.Experiment.result) =
    (match r.invariant with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "FAIL: %s bank invariant: %s\n" label msg;
      exit 1);
    match r.consistent with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "FAIL: %s serializability oracle: %s\n" label msg;
      exit 1
  in
  let seq = point ~batch_commit:false in
  let batch = point ~batch_commit:true in
  guard "sequential" seq;
  guard "batch" batch;
  let stats =
    {
      seq_cps = seq.throughput;
      batch_cps = batch.throughput;
      batch_speedup =
        (if seq.throughput > 0. then batch.throughput /. seq.throughput else 0.);
      occupancy_p50 = batch.batch_occupancy_p50;
      occupancy_p95 = batch.batch_occupancy_p95;
      spec_aborts = batch.speculation_aborts;
    }
  in
  Printf.printf
    "  batch commit: %.1f -> %.1f commits/s (%.1fx), occupancy p50=%.0f p95=%.0f, \
     %d speculation aborts\n%!"
    stats.seq_cps stats.batch_cps stats.batch_speedup stats.occupancy_p50
    stats.occupancy_p95 stats.spec_aborts;
  stats

let emit_batch_fields oc (b : batch_stats) =
  Printf.fprintf oc
    "  \"commits_per_sec_seq\": %.2f,\n\
    \  \"commits_per_sec_batch\": %.2f,\n\
    \  \"batch_speedup\": %.3f,\n\
    \  \"batch_occupancy_p50\": %.1f,\n\
    \  \"batch_occupancy_p95\": %.1f,\n\
    \  \"speculation_aborts\": %d,\n"
    b.seq_cps b.batch_cps b.batch_speedup b.occupancy_p50 b.occupancy_p95
    b.spec_aborts

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Pull one numeric field out of a previous BENCH_harness.json without a
   JSON dependency: find the quoted key, parse the float after the colon. *)
let baseline_field path key =
  let contents =
    let ic = open_in path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let needle = Printf.sprintf "\"%s\":" key in
  let n = String.length contents and m = String.length needle in
  let rec find i =
    if i + m > n then None
    else if String.sub contents i m = needle then Some (i + m)
    else find (i + 1)
  in
  Option.bind (find 0) (fun start ->
      let stop = ref start in
      while !stop < n && not (List.mem contents.[!stop] [ ','; '\n'; '}' ]) do
        incr stop
      done;
      float_of_string_opt (String.trim (String.sub contents start (!stop - start))))

(* Shared JSON tail: simulator throughput, tracing overhead, latency and
   allocation-rate fields, emitted by both `wall` and `alloc` modes so the
   CI gate can diff either artifact against a cached baseline. *)
let emit_sim_fields oc ~(untraced : eps_stats) ~(traced : eps_stats)
    ~tracing_overhead_pct =
  Printf.fprintf oc
    "  \"events_per_second\": %.1f,\n\
    \  \"events_per_second_traced\": %.1f,\n\
    \  \"tracing_overhead_pct\": %.2f,\n\
    \  \"latency_p50_ms\": %.3f,\n\
    \  \"latency_p95_ms\": %.3f,\n\
    \  \"latency_p99_ms\": %.3f,\n\
    \  \"events_measured\": %d,\n\
    \  \"commits_measured\": %d,\n\
    \  \"minor_words_per_commit\": %.1f,\n\
    \  \"major_words_per_commit\": %.1f,\n\
    \  \"promoted_words_per_commit\": %.1f,\n\
    \  \"minor_words_per_commit_traced\": %.1f,\n\
    \  \"jobs_requested\": %d,\n\
    \  \"jobs_effective\": %d,\n\
    \  \"available_cores\": %d\n"
    untraced.eps traced.eps tracing_overhead_pct untraced.p50 untraced.p95
    untraced.p99 untraced.events untraced.commits untraced.minor_words_per_commit
    untraced.major_words_per_commit untraced.promoted_words_per_commit
    traced.minor_words_per_commit jobs_requested jobs_effective
    (Harness.Pool.default_jobs ())

(* Measure untraced and traced hot-path stats; the delta is the cost of
   emitting ~1 ring-buffer write per protocol step.  The headline
   [events_per_second] stays the tracing-disabled figure — the
   zero-overhead-when-disabled claim is what the --baseline gate guards. *)
let measure_simulator () =
  let untraced = events_per_second () in
  let traced = events_per_second ~tracer:(Obs.Tracer.create ()) () in
  let tracing_overhead_pct =
    if traced.eps > 0. then ((untraced.eps /. traced.eps) -. 1.) *. 100. else 0.
  in
  Printf.printf "  simulator: %.0f events/s (%d events, bank workload)\n%!"
    untraced.eps untraced.events;
  Printf.printf "  simulator (traced): %.0f events/s (tracing overhead %.2f%%)\n%!"
    traced.eps tracing_overhead_pct;
  Printf.printf
    "  allocation: %.0f minor + %.0f major words/commit (traced: %.0f minor)\n%!"
    untraced.minor_words_per_commit untraced.major_words_per_commit
    traced.minor_words_per_commit;
  Printf.printf "  commit latency: p50=%.1f p95=%.1f p99=%.1f ms (simulated)\n%!"
    untraced.p50 untraced.p95 untraced.p99;
  (untraced, traced, tracing_overhead_pct)

(* The regression gates shared by `wall` and `alloc`.  A baseline written
   before this bench grew a field reports "n/a" and skips that check rather
   than comparing against nan or 0. *)
let run_gates ~(untraced : eps_stats) ~tracing_overhead_pct ~(batch : batch_stats) =
  if tracing_overhead_pct > cli.max_traced_overhead then begin
    Printf.eprintf "FAIL: tracing overhead %.2f%% exceeds limit %.1f%%\n"
      tracing_overhead_pct cli.max_traced_overhead;
    exit 1
  end;
  if batch.batch_speedup < cli.min_batch_speedup then begin
    Printf.eprintf
      "FAIL: batch-commit speedup %.2fx below required %.2fx (%.1f -> %.1f commits/s)\n"
      batch.batch_speedup cli.min_batch_speedup batch.seq_cps batch.batch_cps;
    exit 1
  end;
  Option.iter
    (fun path ->
      let audit key ~current ~limit ~higher_is_worse ~what =
        match baseline_field path key with
        | None ->
          Printf.printf "  baseline %s: n/a (field missing in %s); check skipped\n%!"
            key path
        | Some base when base <= 0. ->
          Printf.printf "  baseline %s: n/a (non-positive in %s); check skipped\n%!"
            key path
        | Some base ->
          let regression_pct =
            if higher_is_worse then ((current /. base) -. 1.) *. 100.
            else (1. -. (current /. base)) *. 100.
          in
          Printf.printf
            "  baseline %s (%s): %.0f -> %.0f, regression %.2f%% (limit %.1f%%)\n%!"
            key path base current regression_pct limit;
          if regression_pct > limit then begin
            Printf.eprintf "FAIL: %s regressed %.2f%% vs baseline (limit %.1f%%)\n"
              what regression_pct limit;
            exit 1
          end
      in
      audit "events_per_second" ~current:untraced.eps ~limit:cli.max_regression
        ~higher_is_worse:false ~what:"tracing-disabled simulator throughput";
      audit "minor_words_per_commit" ~current:untraced.minor_words_per_commit
        ~limit:cli.max_alloc_regression ~higher_is_worse:true
        ~what:"minor allocation per committed transaction";
      audit "major_words_per_commit" ~current:untraced.major_words_per_commit
        ~limit:cli.max_alloc_regression ~higher_is_worse:true
        ~what:"major allocation per committed transaction")
    cli.baseline

let wall_bench () =
  Printf.printf "wall bench: figure regeneration at --scale %s, --jobs 1 vs --jobs %d\n%!"
    cli.scale_name jobs_effective;
  if jobs_effective < jobs_requested then
    Printf.printf "  (clamped --jobs %d to %d available core%s)\n%!" jobs_requested
      jobs_effective
      (if jobs_effective = 1 then "" else "s");
  Harness.Pool.set_jobs 1;
  let seq_seconds, seq_output = timed render_everything in
  Printf.printf "  jobs=1: %.2f s\n%!" seq_seconds;
  (* On a single core a second pass measures only scheduler noise: skip it,
     and publish null speedup/identity so downstream tooling knows the
     comparison never ran (rather than seeing a fake 1.0x). *)
  let par_ran = jobs_effective > 1 in
  let par_seconds, par_output =
    if par_ran then begin
      Harness.Pool.set_jobs jobs_effective;
      let r = timed render_everything in
      Harness.Pool.set_jobs 1;
      r
    end
    else (0., seq_output)
  in
  if par_ran then Printf.printf "  jobs=%d: %.2f s\n%!" jobs_effective par_seconds
  else Printf.printf "  jobs=%d pass skipped (single core)\n%!" jobs_requested;
  let identical = String.equal seq_output par_output in
  let speedup = if par_seconds > 0. then seq_seconds /. par_seconds else 0. in
  if par_ran then
    Printf.printf "  speedup: %.2fx, identical output: %b\n%!" speedup identical;
  let untraced, traced, tracing_overhead_pct = measure_simulator () in
  let batch = measure_batch () in
  let oc = open_out cli.out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"harness_wall\",\n\
    \  \"scale\": \"%s\",\n\
    \  \"jobs\": %d,\n\
    \  \"wall_seconds_jobs1\": %.6f,\n"
    (json_escape cli.scale_name) jobs_effective seq_seconds;
  if par_ran then
    Printf.fprintf oc
      "  \"wall_seconds_jobsN\": %.6f,\n\
      \  \"speedup\": %.4f,\n\
      \  \"output_identical\": %b,\n"
      par_seconds speedup identical
  else
    Printf.fprintf oc
      "  \"wall_seconds_jobsN\": null,\n\
      \  \"speedup\": null,\n\
      \  \"output_identical\": null,\n";
  emit_batch_fields oc batch;
  emit_sim_fields oc ~untraced ~traced ~tracing_overhead_pct;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" cli.out;
  if par_ran && not identical then begin
    prerr_endline "FAIL: parallel output differs from sequential output";
    exit 1
  end;
  run_gates ~untraced ~tracing_overhead_pct ~batch

(* `alloc` mode: just the simulator hot-path measurement — fast enough to
   run on every push, gating both throughput and allocation rate. *)
let alloc_bench () =
  print_endline "alloc bench: GC counters over the simulator hot path (bank workload)";
  let untraced, traced, tracing_overhead_pct = measure_simulator () in
  let batch = measure_batch () in
  let oc = open_out cli.out in
  Printf.fprintf oc "{\n  \"bench\": \"harness_alloc\",\n  \"scale\": \"%s\",\n"
    (json_escape cli.scale_name);
  emit_batch_fields oc batch;
  emit_sim_fields oc ~untraced ~traced ~tracing_overhead_pct;
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" cli.out;
  run_gates ~untraced ~tracing_overhead_pct ~batch

(* `openloop` mode: Poisson arrivals from a million-client logical
   population at two offered loads — one the cluster absorbs, one far past
   its capacity — emitting BENCH_openloop.json and gating the saturation
   signature.  The sub-saturation point checks the driver itself (achieved
   tracks offered, no standing queue); the super-saturation point checks
   the measurement split open-loop load exists for: queueing delay blows
   up while service latency stays flat. *)
let openloop_bench () =
  let point ~rate ~duration =
    Harness.Openloop.run ~nodes:5 ~seed:19 ~warmup:500. ~duration ~rate
      ~population:1_000_000
      ~config:(Config.default Config.Closed)
      ~benchmark:Benchmarks.Counter.benchmark
      ~params:
        { Benchmarks.Workload.default_params with objects = 512; calls = 1; read_ratio = 0.5 }
      ()
  in
  print_endline "open-loop bench: Poisson arrivals, 1M logical clients (counter workload)";
  let under = point ~rate:150. ~duration:8_000. in
  Format.printf "  %a@." Harness.Openloop.pp_result under;
  let over = point ~rate:5_000. ~duration:3_000. in
  Format.printf "  %a@." Harness.Openloop.pp_result over;
  let out = if cli.out = "BENCH_harness.json" then "BENCH_openloop.json" else cli.out in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": \"openloop\",\n\
    \  \"population\": 1000000,\n\
    \  \"under_saturation\": %s,\n\
    \  \"over_saturation\": %s\n\
     }\n"
    (Harness.Openloop.to_json under)
    (Harness.Openloop.to_json over);
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  let fail msg =
    Printf.eprintf "FAIL: %s\n" msg;
    exit 1
  in
  (match under.invariant with
  | Ok () -> ()
  | Error m -> fail ("under-saturation invariant: " ^ m));
  (match under.consistent with
  | Ok () -> ()
  | Error m -> fail ("under-saturation oracle: " ^ m));
  if under.achieved_load < 0.8 *. under.offered_load
     || under.achieved_load > 1.2 *. under.offered_load then
    fail
      (Printf.sprintf
         "under saturation, achieved load %.1f/s does not track offered %.1f/s"
         under.achieved_load under.offered_load);
  if over.achieved_load > 0.8 *. over.offered_load then
    fail
      (Printf.sprintf
         "past saturation, achieved load %.1f/s implausibly tracks offered %.1f/s"
         over.achieved_load over.offered_load);
  if over.queue_p50 <= over.service_p99 then
    fail
      (Printf.sprintf
         "past saturation, queueing delay p50 (%.2f ms) should dominate \
          service p99 (%.2f ms)"
         over.queue_p50 over.service_p99);
  if over.final_backlog = 0 then
    fail "past saturation, the window closed with an empty backlog";
  Printf.printf
    "  gates ok: achieved tracks offered below saturation; queueing delay \
     dominates past it\n%!"

let () =
  if cli.wall then wall_bench ()
  else if cli.alloc then alloc_bench ()
  else if cli.openloop then openloop_bench ()
  else begin
    Harness.Pool.set_jobs jobs_effective;
    figures ();
    ablations ();
    micro ()
  end
